//! Registry of in-flight transaction start timestamps.
//!
//! The MVM needs to know the set of live start timestamps for two
//! purposes described in section 3.1 of the paper:
//!
//! 1. **Garbage collection** — the oldest active transaction determines
//!    how many old versions must be retained; everything older than the
//!    newest version at-or-below that timestamp is reclaimable.
//! 2. **Version coalescing** — a new version only needs to be created if
//!    some live start timestamp falls between the previous version and the
//!    new one; otherwise the previous version can be overwritten in place
//!    because no snapshot can observe it.
//!
//! The paper stores start timestamps in a priority queue whose head is the
//! oldest in-flight transaction; this model keeps a sorted vector (bounded
//! by the hardware thread count, so O(threads) operations are fine) plus
//! the owning thread for diagnostics.

use crate::timestamp::Timestamp;
use crate::types::ThreadId;

/// Tracks the start timestamps of all in-flight transactions.
///
/// # Examples
///
/// ```
/// use sitm_mvm::{ActiveTransactions, Timestamp, ThreadId};
/// let mut act = ActiveTransactions::new();
/// act.register(ThreadId(0), Timestamp(5));
/// act.register(ThreadId(1), Timestamp(9));
/// assert_eq!(act.oldest_start(), Some(Timestamp(5)));
/// assert!(act.any_start_in(Timestamp(4), Timestamp(7)));
/// act.unregister(ThreadId(0));
/// assert_eq!(act.oldest_start(), Some(Timestamp(9)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActiveTransactions {
    /// `(start_ts, owner)` pairs sorted by start timestamp.
    live: Vec<(Timestamp, ThreadId)>,
    /// Bumped whenever the registry changes in a way that could make
    /// previously-retained versions reclaimable: the oldest member
    /// leaving (which raises `oldest_start` or empties the set).
    /// Version lists stamp the generation of their last completed GC
    /// scan and skip the scan while it is unchanged — registering a
    /// transaction or removing a non-oldest one can only *extend* what
    /// must be retained, never shrink it, so neither bumps.
    generation: u64,
}

impl ActiveTransactions {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `thread` as running a transaction that started at `start`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `thread` already has a registered
    /// transaction; a hardware thread runs at most one transaction at a
    /// time, and the protocol cores uphold that invariant, so release
    /// builds skip the O(threads) scan on every begin.
    pub fn register(&mut self, thread: ThreadId, start: Timestamp) {
        debug_assert!(
            !self.live.iter().any(|&(_, t)| t == thread),
            "{thread} already has an in-flight transaction"
        );
        let pos = self.live.partition_point(|&(ts, _)| ts < start);
        self.live.insert(pos, (start, thread));
    }

    /// Removes `thread`'s transaction (on commit or abort). Returns its
    /// start timestamp, or `None` if the thread had no live transaction.
    pub fn unregister(&mut self, thread: ThreadId) -> Option<Timestamp> {
        let pos = self.live.iter().position(|&(_, t)| t == thread)?;
        if pos == 0 {
            // The oldest member left: `oldest_start` rose (or the set
            // emptied), so retained versions may now be reclaimable.
            self.generation += 1;
        }
        Some(self.live.remove(pos).0)
    }

    /// Opaque counter identifying the current "GC epoch": it changes
    /// exactly when a completed garbage-collection scan could find more
    /// to reclaim than the previous one. See the field docs for why
    /// `register` does not bump it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Start timestamp of the oldest in-flight transaction, i.e. the head
    /// of the paper's priority queue. `None` when no transaction is live.
    pub fn oldest_start(&self) -> Option<Timestamp> {
        self.live.first().map(|&(ts, _)| ts)
    }

    /// Whether some live start timestamp `s` satisfies `lo <= s < hi`.
    ///
    /// This is the coalescing test: a version tagged `lo` may be
    /// overwritten by a version tagged `hi` exactly when this returns
    /// `false` (no snapshot between them can exist).
    pub fn any_start_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        let from = self.live.partition_point(|&(ts, _)| ts < lo);
        self.live.get(from).is_some_and(|&(ts, _)| ts < hi)
    }

    /// The start timestamp registered for `thread`, if any.
    pub fn start_of(&self, thread: ThreadId) -> Option<Timestamp> {
        self.live
            .iter()
            .find(|&&(_, t)| t == thread)
            .map(|&(ts, _)| ts)
    }

    /// Number of in-flight transactions.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no transaction is in flight.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Iterates over `(start, thread)` pairs in start-timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, ThreadId)> + '_ {
        self.live.iter().copied()
    }

    /// Drops every registration (used by the clock-overflow abort-all
    /// path).
    pub fn clear(&mut self) {
        if !self.live.is_empty() {
            self.generation += 1;
        }
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_tracks_minimum() {
        let mut a = ActiveTransactions::new();
        assert_eq!(a.oldest_start(), None);
        a.register(ThreadId(0), Timestamp(10));
        a.register(ThreadId(1), Timestamp(3));
        a.register(ThreadId(2), Timestamp(7));
        assert_eq!(a.oldest_start(), Some(Timestamp(3)));
        assert_eq!(a.unregister(ThreadId(1)), Some(Timestamp(3)));
        assert_eq!(a.oldest_start(), Some(Timestamp(7)));
    }

    #[test]
    fn any_start_in_is_half_open() {
        let mut a = ActiveTransactions::new();
        a.register(ThreadId(0), Timestamp(5));
        assert!(a.any_start_in(Timestamp(5), Timestamp(6)));
        assert!(a.any_start_in(Timestamp(0), Timestamp(6)));
        assert!(!a.any_start_in(Timestamp(0), Timestamp(5)));
        assert!(!a.any_start_in(Timestamp(6), Timestamp(100)));
    }

    #[test]
    fn unregister_unknown_thread_is_none() {
        let mut a = ActiveTransactions::new();
        assert_eq!(a.unregister(ThreadId(9)), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already has an in-flight transaction")]
    fn double_register_panics() {
        let mut a = ActiveTransactions::new();
        a.register(ThreadId(0), Timestamp(1));
        a.register(ThreadId(0), Timestamp(2));
    }

    #[test]
    fn generation_tracks_reclaim_opportunities() {
        let mut a = ActiveTransactions::new();
        let g0 = a.generation();
        // Registering never bumps: it can only extend what GC retains.
        a.register(ThreadId(0), Timestamp(5));
        a.register(ThreadId(1), Timestamp(9));
        assert_eq!(a.generation(), g0);
        // Removing a non-oldest member leaves `oldest_start` unchanged.
        a.unregister(ThreadId(1));
        assert_eq!(a.generation(), g0);
        // Removing the oldest raises `oldest_start` (or empties the set).
        a.unregister(ThreadId(0));
        assert_eq!(a.generation(), g0 + 1);
        // Clearing an empty set is a no-op; clearing a non-empty one bumps.
        a.clear();
        assert_eq!(a.generation(), g0 + 1);
        a.register(ThreadId(2), Timestamp(1));
        a.clear();
        assert_eq!(a.generation(), g0 + 2);
    }

    #[test]
    fn start_of_and_iter() {
        let mut a = ActiveTransactions::new();
        a.register(ThreadId(3), Timestamp(8));
        a.register(ThreadId(1), Timestamp(2));
        assert_eq!(a.start_of(ThreadId(3)), Some(Timestamp(8)));
        assert_eq!(a.start_of(ThreadId(0)), None);
        let order: Vec<_> = a.iter().map(|(ts, _)| ts.0).collect();
        assert_eq!(order, vec![2, 8]);
        a.clear();
        assert!(a.is_empty());
    }
}

//! Global timestamp management for SI-TM transactions.
//!
//! Every transaction obtains a unique *start* timestamp at `TM_BEGIN` and,
//! unless it is read-only, an *end* timestamp at `TM_COMMIT`. The paper's
//! commit protocol (section 4.2) reserves a window of `delta` timestamps
//! for the committing transaction: the end timestamp is
//! `current + delta` while the counter itself only advances by one, so
//! every transaction that starts while the commit is in flight receives a
//! start timestamp *smaller* than the pending end timestamp and therefore
//! cannot observe the half-published write set. If more than `delta`
//! transactions try to start during a single commit, the starters must
//! stall until the commit finishes.
//!
//! The timestamp space also reserves its `n_threads` largest values as
//! *transient ids*, used to tag uncommitted versions evicted to the MVM so
//! they remain visible only to their owning transaction.

use crate::types::ThreadId;
use std::fmt;

/// A logical timestamp drawn from the global clock.
///
/// Ordinary timestamps are totally ordered; the top `n_threads` values of
/// the configured timestamp space are reserved as transient ids (see
/// [`GlobalClock::transient_id`]) and never compare as "committed"
/// versions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest timestamp; no committed version ever carries it, so it
    /// is usable as a "before everything" sentinel.
    pub const ZERO: Timestamp = Timestamp(0);
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Error returned when the timestamp counter reaches the end of its
/// (configurable) space.
///
/// The paper handles this rare case by aborting all active transactions
/// and raising an interrupt; callers of [`GlobalClock`] observe the
/// condition as this error and are expected to do the same, then call
/// [`GlobalClock::reset_after_overflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockOverflow;

impl fmt::Display for ClockOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "global timestamp counter overflowed")
    }
}

impl std::error::Error for ClockOverflow {}

/// Error returned from [`GlobalClock::begin`] when a commit reservation is
/// in flight and the `delta` window is exhausted: the starting transaction
/// must stall until the commit completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MustStall;

impl fmt::Display for MustStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction start must stall for an in-flight commit")
    }
}

impl std::error::Error for MustStall {}

/// The global timestamp counter with the SI-TM delta-reservation commit
/// protocol and a reserved transient-id band.
///
/// This type is deliberately *not* internally synchronized: the simulator
/// is a single-threaded discrete-event engine, so the clock is owned
/// mutably by the protocol model. The real-thread software STM in
/// `sitm-stm` has its own atomic clock.
///
/// # Examples
///
/// ```
/// use sitm_mvm::GlobalClock;
/// let mut clock = GlobalClock::new(4);
/// let start = clock.begin().unwrap();
/// let end = clock.reserve_end().unwrap();
/// assert!(end > start);
/// clock.finish_commit(end);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalClock {
    next: u64,
    /// Size of the reservation window for a single commit.
    delta: u64,
    /// Largest usable timestamp (exclusive); above it lies the transient
    /// band and then overflow.
    limit: u64,
    n_threads: usize,
    /// End timestamps of commits currently in flight (reserved but not yet
    /// finished), kept sorted ascending. Bounded by the thread count.
    pending: Vec<u64>,
    /// Number of times the clock overflowed and was reset.
    overflows: u64,
}

/// Default size of the commit reservation window.
pub const DEFAULT_DELTA: u64 = 64;

impl GlobalClock {
    /// Creates a clock for a machine with `n_threads` hardware threads,
    /// using the full `u64` space and [`DEFAULT_DELTA`].
    pub fn new(n_threads: usize) -> Self {
        Self::with_limit(n_threads, u64::MAX - n_threads as u64, DEFAULT_DELTA)
    }

    /// Creates a clock whose usable timestamps are `1..limit`. The
    /// `n_threads` values directly above `limit` act as the transient-id
    /// band. Small limits are useful for exercising the overflow path.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0` or `limit < 2`.
    pub fn with_limit(n_threads: usize, limit: u64, delta: u64) -> Self {
        assert!(delta > 0, "delta must be positive");
        assert!(limit >= 2, "timestamp space too small");
        GlobalClock {
            next: 1,
            delta,
            limit,
            n_threads,
            pending: Vec::new(),
            overflows: 0,
        }
    }

    /// The transient id tagging uncommitted versions owned by `thread`.
    ///
    /// Transient ids occupy the `n_threads` values above the usable
    /// timestamp space, mirroring the paper's reservation of the `N`
    /// largest timestamps.
    pub fn transient_id(&self, thread: ThreadId) -> Timestamp {
        debug_assert!(thread.0 < self.n_threads);
        Timestamp(self.limit + thread.0 as u64)
    }

    /// Whether `ts` lies in the transient-id band rather than being a real
    /// commit timestamp.
    pub fn is_transient(&self, ts: Timestamp) -> bool {
        ts.0 >= self.limit
    }

    /// Obtains a unique start timestamp for a beginning transaction.
    ///
    /// # Errors
    ///
    /// Returns [`MustStall`] if an in-flight commit has exhausted its
    /// reservation window (the starter must retry once the commit
    /// finishes), wrapped in `Ok(Err(..))` semantics flattened to a
    /// dedicated error; returns [`ClockOverflow`] if the timestamp space
    /// is exhausted.
    pub fn begin(&mut self) -> Result<Timestamp, BeginError> {
        if let Some(&oldest_pending) = self.pending.first() {
            // Starters must stay below every pending end timestamp.
            if self.next >= oldest_pending {
                return Err(BeginError::Stall(MustStall));
            }
        }
        if self.next >= self.limit {
            return Err(BeginError::Overflow(ClockOverflow));
        }
        let ts = Timestamp(self.next);
        self.next += 1;
        Ok(ts)
    }

    /// Reserves an end timestamp for a committing transaction:
    /// `end = current + delta`, advancing the counter by one.
    ///
    /// # Errors
    ///
    /// Returns [`ClockOverflow`] if the reservation would leave the usable
    /// timestamp space.
    pub fn reserve_end(&mut self) -> Result<Timestamp, ClockOverflow> {
        let end = self.next.saturating_add(self.delta);
        if end >= self.limit {
            return Err(ClockOverflow);
        }
        self.next += 1;
        let pos = self.pending.partition_point(|&p| p < end);
        self.pending.insert(pos, end);
        Ok(Timestamp(end))
    }

    /// Completes a commit whose end timestamp was obtained from
    /// [`GlobalClock::reserve_end`]: the global clock jumps to just past
    /// the end timestamp (the paper sets the global timestamp to the end
    /// timestamp of the committing transaction).
    ///
    /// Also used to cancel a reservation when the commit validation fails;
    /// the clock still advances, which is harmless (timestamps are only
    /// required to be unique and monotonic).
    ///
    /// # Panics
    ///
    /// Panics if `end` was not reserved and still pending.
    pub fn finish_commit(&mut self, end: Timestamp) {
        let pos = self
            .pending
            .iter()
            .position(|&p| p == end.0)
            .expect("finish_commit called with unreserved end timestamp");
        self.pending.remove(pos);
        if self.next <= end.0 {
            self.next = end.0 + 1;
        }
    }

    /// Current value of the counter (the next start timestamp to be
    /// handed out). Exposed for diagnostics and tests.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.next)
    }

    /// Number of commits currently holding a reservation.
    pub fn pending_commits(&self) -> usize {
        self.pending.len()
    }

    /// Resets the clock after an overflow was observed and every active
    /// transaction has been aborted (the paper's software interrupt
    /// handler). Increments the overflow counter.
    pub fn reset_after_overflow(&mut self) {
        self.next = 1;
        self.pending.clear();
        self.overflows += 1;
    }

    /// How many times the clock overflowed and was reset.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

/// Errors from [`GlobalClock::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginError {
    /// A commit reservation window is exhausted; stall and retry.
    Stall(MustStall),
    /// The timestamp space is exhausted; abort all and reset.
    Overflow(ClockOverflow),
}

impl fmt::Display for BeginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeginError::Stall(e) => e.fmt(f),
            BeginError::Overflow(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BeginError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_yields_unique_increasing_timestamps() {
        let mut c = GlobalClock::new(2);
        let a = c.begin().unwrap();
        let b = c.begin().unwrap();
        assert!(b > a);
    }

    #[test]
    fn reserve_end_exceeds_concurrent_starts() {
        let mut c = GlobalClock::new(4);
        let _s0 = c.begin().unwrap();
        let end = c.reserve_end().unwrap();
        // Transactions starting during the commit get smaller timestamps.
        for _ in 0..DEFAULT_DELTA - 2 {
            let s = c.begin().unwrap();
            assert!(s.0 < end.0, "start {s} must precede pending end {end}");
        }
        c.finish_commit(end);
    }

    #[test]
    fn starters_stall_when_delta_exhausted() {
        let mut c = GlobalClock::with_limit(2, 1 << 20, 3);
        let end = c.reserve_end().unwrap();
        // delta = 3: reservation leaves room for 2 more starts.
        c.begin().unwrap();
        c.begin().unwrap();
        assert_eq!(c.begin(), Err(BeginError::Stall(MustStall)));
        c.finish_commit(end);
        // After the commit finishes the starter proceeds, with a start
        // timestamp beyond the published end.
        let s = c.begin().unwrap();
        assert!(s.0 > end.0);
    }

    #[test]
    fn clock_jumps_past_committed_end() {
        let mut c = GlobalClock::new(1);
        let end = c.reserve_end().unwrap();
        c.finish_commit(end);
        assert!(c.now().0 > end.0);
    }

    #[test]
    fn overflow_is_reported_and_resettable() {
        let mut c = GlobalClock::with_limit(1, 8, 2);
        let mut saw_overflow = false;
        for _ in 0..20 {
            match c.begin() {
                Ok(_) => {}
                Err(BeginError::Overflow(_)) => {
                    saw_overflow = true;
                    break;
                }
                Err(BeginError::Stall(_)) => unreachable!("no commits pending"),
            }
        }
        assert!(saw_overflow);
        c.reset_after_overflow();
        assert_eq!(c.overflows(), 1);
        assert!(c.begin().is_ok());
    }

    #[test]
    fn reserve_end_overflow() {
        let mut c = GlobalClock::with_limit(1, 8, 100);
        assert_eq!(c.reserve_end(), Err(ClockOverflow));
    }

    #[test]
    fn transient_ids_are_above_usable_space() {
        let c = GlobalClock::with_limit(4, 1000, 8);
        for t in 0..4 {
            let id = c.transient_id(ThreadId(t));
            assert!(c.is_transient(id));
            assert_eq!(id.0, 1000 + t as u64);
        }
        assert!(!c.is_transient(Timestamp(999)));
    }

    #[test]
    fn multiple_pending_commits_sorted() {
        let mut c = GlobalClock::new(4);
        let e1 = c.reserve_end().unwrap();
        let e2 = c.reserve_end().unwrap();
        assert!(e2 > e1);
        assert_eq!(c.pending_commits(), 2);
        c.finish_commit(e1);
        c.finish_commit(e2);
        assert_eq!(c.pending_commits(), 0);
    }

    #[test]
    #[should_panic(expected = "unreserved")]
    fn finish_commit_requires_reservation() {
        let mut c = GlobalClock::new(1);
        c.finish_commit(Timestamp(42));
    }
}

//! Fundamental address and data types shared across the SI-TM crates.
//!
//! The multiversioned memory operates at *cache-line* granularity: the
//! version list maps a [`LineAddr`] to a bounded set of timestamped line
//! images. Software, however, addresses individual machine words, so the
//! public API speaks [`Addr`] (a word address) and converts internally.

use std::fmt;

/// A machine word, the unit of data read and written by transactions.
pub type Word = u64;

/// Number of words per cache line (64-byte lines of 8-byte words).
pub const WORDS_PER_LINE: usize = 8;

/// Log2 of [`WORDS_PER_LINE`], used for address arithmetic.
pub const LINE_SHIFT: u32 = 3;

/// One cache line worth of data.
///
/// Lines are the versioning granularity of the MVM: each committed version
/// stores a full line image. A line that has never been written reads as
/// the *zero line* (all words zero), matching the paper's lazy allocation
/// of physical memory on first write.
pub type LineData = [Word; WORDS_PER_LINE];

/// The all-zeroes line returned for never-written addresses.
pub const ZERO_LINE: LineData = [0; WORDS_PER_LINE];

/// A word-granularity memory address.
///
/// `Addr(n)` names the `n`-th word of the multiversioned address space.
/// Use [`Addr::line`] and [`Addr::offset`] to locate the containing cache
/// line and the word slot within it.
///
/// # Examples
///
/// ```
/// use sitm_mvm::{Addr, LineAddr};
/// let a = Addr(19);
/// assert_eq!(a.line(), LineAddr(2));
/// assert_eq!(a.offset(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// The word slot of this address within its cache line.
    #[inline]
    pub fn offset(self) -> usize {
        (self.0 & (WORDS_PER_LINE as u64 - 1)) as usize
    }

    /// The address `n` words after `self`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not an `impl Add`: offsets by words, keeps call sites explicit
    pub fn add(self, n: u64) -> Addr {
        Addr(self.0 + n)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line-granularity address: the versioning unit of the MVM.
///
/// `LineAddr(n)` names the `n`-th 64-byte line of the address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The word address of the first word in this line.
    #[inline]
    pub fn first_word(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The word address of slot `offset` within this line.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= WORDS_PER_LINE`.
    #[inline]
    pub fn word(self, offset: usize) -> Addr {
        assert!(offset < WORDS_PER_LINE, "word offset out of line bounds");
        Addr((self.0 << LINE_SHIFT) | offset as u64)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Identifier of a hardware thread / core in the simulated machine.
///
/// Thread ids double as owners of *transient* (uncommitted, evicted)
/// versions in the MVM: the paper reserves the `N` largest timestamps as
/// temporary ids, one per hardware thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub usize);

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_and_offset_roundtrip() {
        for raw in [0u64, 1, 7, 8, 9, 63, 64, 1_000_003] {
            let a = Addr(raw);
            assert_eq!(a.line().word(a.offset()), a);
        }
    }

    #[test]
    fn line_first_word_is_offset_zero() {
        let l = LineAddr(5);
        assert_eq!(l.first_word().offset(), 0);
        assert_eq!(l.first_word().line(), l);
    }

    #[test]
    #[should_panic(expected = "out of line bounds")]
    fn line_word_rejects_large_offset() {
        LineAddr(0).word(WORDS_PER_LINE);
    }

    #[test]
    fn addr_add_crosses_lines() {
        let a = Addr(6).add(4);
        assert_eq!(a, Addr(10));
        assert_eq!(a.line(), LineAddr(1));
        assert_eq!(a.offset(), 2);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", Addr(0)).is_empty());
        assert!(!format!("{:?}", LineAddr(0)).is_empty());
        assert!(!format!("{:?}", ThreadId(0)).is_empty());
    }
}

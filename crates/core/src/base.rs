//! Shared building blocks for the protocol models: the per-transaction
//! write buffer and the protocol base (store + memory-system cost model).

use std::collections::{BTreeMap, BTreeSet};

use sitm_mvm::{Addr, LineAddr, LineData, MvmStore, Word};
use sitm_sim::{Cycles, MachineConfig, MemorySystem};

/// A transaction's buffered (uncommitted) writes, at word granularity,
/// with the set of touched lines maintained alongside.
///
/// Lazy version management buffers stores privately until commit; this
/// structure is that buffer. `BTreeMap`/`BTreeSet` keep iteration order
/// deterministic, which the discrete-event simulation relies on.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    words: BTreeMap<Addr, Word>,
    lines: BTreeSet<LineAddr>,
}

impl WriteBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers `addr = value`. Returns `true` if this touched a line not
    /// previously written by the transaction.
    pub fn insert(&mut self, addr: Addr, value: Word) -> bool {
        self.words.insert(addr, value);
        self.lines.insert(addr.line())
    }

    /// The buffered value of `addr`, if the transaction wrote it.
    pub fn get(&self, addr: Addr) -> Option<Word> {
        self.words.get(&addr).copied()
    }

    /// Whether the transaction wrote anything in `line`.
    pub fn touches_line(&self, line: LineAddr) -> bool {
        self.lines.contains(&line)
    }

    /// The set of written lines, in address order.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter().copied()
    }

    /// Number of distinct lines written.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing was written (the transaction is read-only).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Applies the buffered words belonging to `line` onto `base`,
    /// producing the line image the transaction observes / will commit.
    pub fn apply_to(&self, line: LineAddr, mut base: LineData) -> LineData {
        let lo = line.word(0);
        let hi = Addr(lo.0 + sitm_mvm::WORDS_PER_LINE as u64);
        for (&addr, &value) in self.words.range(lo..hi) {
            base[addr.offset()] = value;
        }
        base
    }

    /// The word addresses written within `line`.
    pub fn words_in(&self, line: LineAddr) -> impl Iterator<Item = (Addr, Word)> + '_ {
        let lo = line.word(0);
        let hi = Addr(lo.0 + sitm_mvm::WORDS_PER_LINE as u64);
        self.words.range(lo..hi).map(|(&a, &v)| (a, v))
    }

    /// Discards everything.
    pub fn clear(&mut self) {
        self.words.clear();
        self.lines.clear();
    }
}

/// State shared by every protocol model: the multiversioned store and the
/// cache-hierarchy cost model, plus fixed operation costs.
#[derive(Debug)]
pub struct ProtocolBase {
    /// The backing (multiversioned) memory.
    pub store: MvmStore,
    /// The timing model.
    pub mem: MemorySystem,
    /// Cycles to obtain a timestamp / initialize transaction state.
    pub begin_cost: Cycles,
    /// Cycles to discard transaction state on rollback (fixed part; the
    /// paper performs rollback in software).
    pub rollback_cost: Cycles,
    /// Cycles per write-set line for validation bookkeeping.
    pub per_line_validate_cost: Cycles,
}

impl ProtocolBase {
    /// Builds the base for machine `cfg` with an empty store.
    pub fn new(store: MvmStore, cfg: &MachineConfig) -> Self {
        ProtocolBase {
            store,
            mem: MemorySystem::new(cfg),
            begin_cost: 10,
            rollback_cost: 40,
            per_line_validate_cost: cfg.l3.latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_mvm::ZERO_LINE;

    #[test]
    fn write_buffer_tracks_words_and_lines() {
        let mut wb = WriteBuffer::new();
        assert!(wb.is_empty());
        assert!(wb.insert(Addr(3), 30));
        assert!(!wb.insert(Addr(5), 50), "same line");
        assert!(wb.insert(Addr(9), 90), "new line");
        assert_eq!(wb.get(Addr(3)), Some(30));
        assert_eq!(wb.get(Addr(4)), None);
        assert_eq!(wb.line_count(), 2);
        assert!(wb.touches_line(LineAddr(0)));
        assert!(!wb.touches_line(LineAddr(7)));
    }

    #[test]
    fn apply_to_merges_only_own_line() {
        let mut wb = WriteBuffer::new();
        wb.insert(Addr(1), 11);
        wb.insert(Addr(9), 99); // next line; must not leak in
        let merged = wb.apply_to(LineAddr(0), ZERO_LINE);
        assert_eq!(merged[1], 11);
        assert!(merged.iter().enumerate().all(|(i, &w)| i == 1 || w == 0));
    }

    #[test]
    fn words_in_is_line_scoped() {
        let mut wb = WriteBuffer::new();
        wb.insert(Addr(8), 1);
        wb.insert(Addr(15), 2);
        wb.insert(Addr(16), 3);
        let in_line1: Vec<_> = wb.words_in(LineAddr(1)).collect();
        assert_eq!(in_line1, vec![(Addr(8), 1), (Addr(15), 2)]);
    }

    #[test]
    fn clear_resets() {
        let mut wb = WriteBuffer::new();
        wb.insert(Addr(0), 1);
        wb.clear();
        assert!(wb.is_empty());
        assert_eq!(wb.line_count(), 0);
    }
}

//! Shared building blocks for the protocol models: the per-transaction
//! write buffer and the protocol base (store + memory-system cost model).

use sitm_mvm::{Addr, LineAddr, LineData, MvmStore, Word};
use sitm_sim::{Cycles, MachineConfig, MemorySystem};

/// A sorted set of line addresses backed by a flat vector.
///
/// Transaction read/write sets are small (a handful to a few dozen
/// lines), so a sorted `Vec` with binary-search insertion beats a
/// `BTreeSet`: no per-node allocation, contiguous probes, and `clear`
/// keeps the capacity for the next transaction. Iteration is in
/// ascending address order — exactly the order `BTreeSet` produced —
/// which the discrete-event simulation relies on for determinism.
#[derive(Debug, Clone, Default)]
pub struct LineSet {
    items: Vec<LineAddr>,
}

impl LineSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `line`. Returns `true` if it was not already present.
    pub fn insert(&mut self, line: LineAddr) -> bool {
        match self.items.binary_search(&line) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, line);
                true
            }
        }
    }

    /// Whether `line` is in the set.
    pub fn contains(&self, line: &LineAddr) -> bool {
        self.items.binary_search(line).is_ok()
    }

    /// The lines in ascending address order.
    pub fn iter(&self) -> std::slice::Iter<'_, LineAddr> {
        self.items.iter()
    }

    /// Number of lines in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes every line, keeping the allocation.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<'a> IntoIterator for &'a LineSet {
    type Item = &'a LineAddr;
    type IntoIter = std::slice::Iter<'a, LineAddr>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<LineAddr> for LineSet {
    fn from_iter<I: IntoIterator<Item = LineAddr>>(iter: I) -> Self {
        let mut items: Vec<LineAddr> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        LineSet { items }
    }
}

/// The lines a transaction has touched, in first-touch order, possibly
/// with (non-consecutive) duplicates.
///
/// Membership is never queried: the only consumer is the flash
/// invalidation of transactionally marked cache lines at transaction
/// end, and invalidating a line twice is a no-op. Recording a touch is
/// therefore a plain push — deduplicated against the immediately
/// preceding touch, which covers the common read-modify-write pattern —
/// instead of a sorted insert.
#[derive(Debug, Clone, Default)]
pub struct TouchedLines(Vec<LineAddr>);

impl TouchedLines {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a touch of `line`.
    pub fn insert(&mut self, line: LineAddr) {
        if self.0.last() != Some(&line) {
            self.0.push(line);
        }
    }

    /// The touched lines in first-touch order (duplicates possible).
    pub fn iter(&self) -> std::slice::Iter<'_, LineAddr> {
        self.0.iter()
    }
}

/// A transaction's buffered (uncommitted) writes, at word granularity,
/// with the set of touched lines maintained alongside.
///
/// Lazy version management buffers stores privately until commit; this
/// structure is that buffer. Both the word map and the line set are
/// sorted flat vectors (see `LineSet`): write sets are small, and the
/// `BTreeMap` this replaced spent more time allocating nodes than
/// ordering keys. Iteration stays in ascending address order, which the
/// discrete-event simulation relies on for determinism.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    words: Vec<(Addr, Word)>,
    lines: LineSet,
}

impl WriteBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers `addr = value`. Returns `true` if this touched a line not
    /// previously written by the transaction.
    pub fn insert(&mut self, addr: Addr, value: Word) -> bool {
        match self.words.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(pos) => self.words[pos].1 = value,
            Err(pos) => self.words.insert(pos, (addr, value)),
        }
        self.lines.insert(addr.line())
    }

    /// The buffered value of `addr`, if the transaction wrote it.
    pub fn get(&self, addr: Addr) -> Option<Word> {
        self.words
            .binary_search_by_key(&addr, |&(a, _)| a)
            .ok()
            .map(|pos| self.words[pos].1)
    }

    /// Whether the transaction wrote anything in `line`.
    pub fn touches_line(&self, line: LineAddr) -> bool {
        self.lines.contains(&line)
    }

    /// The set of written lines, in address order.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter().copied()
    }

    /// Number of distinct lines written.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing was written (the transaction is read-only).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The contiguous run of buffered words belonging to `line`.
    fn line_range(&self, line: LineAddr) -> &[(Addr, Word)] {
        let lo = line.word(0);
        let hi = Addr(lo.0 + sitm_mvm::WORDS_PER_LINE as u64);
        let start = self.words.partition_point(|&(a, _)| a < lo);
        let end = self.words.partition_point(|&(a, _)| a < hi);
        &self.words[start..end]
    }

    /// Applies the buffered words belonging to `line` onto `base`,
    /// producing the line image the transaction observes / will commit.
    pub fn apply_to(&self, line: LineAddr, mut base: LineData) -> LineData {
        for &(addr, value) in self.line_range(line) {
            base[addr.offset()] = value;
        }
        base
    }

    /// The word addresses written within `line`.
    pub fn words_in(&self, line: LineAddr) -> impl Iterator<Item = (Addr, Word)> + '_ {
        self.line_range(line).iter().copied()
    }

    /// Discards everything, keeping the allocations.
    pub fn clear(&mut self) {
        self.words.clear();
        self.lines.clear();
    }
}

/// State shared by every protocol model: the multiversioned store and the
/// cache-hierarchy cost model, plus fixed operation costs.
#[derive(Debug)]
pub struct ProtocolBase {
    /// The backing (multiversioned) memory.
    pub store: MvmStore,
    /// The timing model.
    pub mem: MemorySystem,
    /// Cycles to obtain a timestamp / initialize transaction state.
    pub begin_cost: Cycles,
    /// Cycles to discard transaction state on rollback (fixed part; the
    /// paper performs rollback in software).
    pub rollback_cost: Cycles,
    /// Cycles per write-set line for validation bookkeeping.
    pub per_line_validate_cost: Cycles,
}

impl ProtocolBase {
    /// Builds the base for machine `cfg` with an empty store.
    pub fn new(store: MvmStore, cfg: &MachineConfig) -> Self {
        ProtocolBase {
            store,
            mem: MemorySystem::new(cfg),
            begin_cost: 10,
            rollback_cost: 40,
            per_line_validate_cost: cfg.l3.latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_mvm::ZERO_LINE;

    #[test]
    fn write_buffer_tracks_words_and_lines() {
        let mut wb = WriteBuffer::new();
        assert!(wb.is_empty());
        assert!(wb.insert(Addr(3), 30));
        assert!(!wb.insert(Addr(5), 50), "same line");
        assert!(wb.insert(Addr(9), 90), "new line");
        assert_eq!(wb.get(Addr(3)), Some(30));
        assert_eq!(wb.get(Addr(4)), None);
        assert_eq!(wb.line_count(), 2);
        assert!(wb.touches_line(LineAddr(0)));
        assert!(!wb.touches_line(LineAddr(7)));
    }

    #[test]
    fn apply_to_merges_only_own_line() {
        let mut wb = WriteBuffer::new();
        wb.insert(Addr(1), 11);
        wb.insert(Addr(9), 99); // next line; must not leak in
        let merged = wb.apply_to(LineAddr(0), ZERO_LINE);
        assert_eq!(merged[1], 11);
        assert!(merged.iter().enumerate().all(|(i, &w)| i == 1 || w == 0));
    }

    #[test]
    fn words_in_is_line_scoped() {
        let mut wb = WriteBuffer::new();
        wb.insert(Addr(8), 1);
        wb.insert(Addr(15), 2);
        wb.insert(Addr(16), 3);
        let in_line1: Vec<_> = wb.words_in(LineAddr(1)).collect();
        assert_eq!(in_line1, vec![(Addr(8), 1), (Addr(15), 2)]);
    }

    #[test]
    fn insert_overwrites_in_place() {
        let mut wb = WriteBuffer::new();
        wb.insert(Addr(3), 30);
        assert!(!wb.insert(Addr(3), 33), "same word, same line");
        assert_eq!(wb.get(Addr(3)), Some(33));
        assert_eq!(wb.line_count(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut wb = WriteBuffer::new();
        wb.insert(Addr(0), 1);
        wb.clear();
        assert!(wb.is_empty());
        assert_eq!(wb.line_count(), 0);
    }

    #[test]
    fn line_set_is_sorted_and_deduplicated() {
        let mut s = LineSet::new();
        assert!(s.insert(LineAddr(7)));
        assert!(s.insert(LineAddr(2)));
        assert!(!s.insert(LineAddr(7)), "duplicate");
        assert!(s.contains(&LineAddr(2)));
        assert!(!s.contains(&LineAddr(3)));
        let order: Vec<_> = s.iter().copied().collect();
        assert_eq!(order, vec![LineAddr(2), LineAddr(7)]);
        let collected: LineSet = [LineAddr(9), LineAddr(1), LineAddr(9)]
            .into_iter()
            .collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(
            collected.iter().copied().collect::<Vec<_>>(),
            vec![LineAddr(1), LineAddr(9)]
        );
        s.clear();
        assert!(s.is_empty());
    }
}

//! # sitm-core — the SI-TM protocol and its baselines
//!
//! This crate implements the transactional-memory protocol models
//! evaluated in *SI-TM: Reducing Transactional Memory Abort Rates
//! through Snapshot Isolation* (ASPLOS 2014), all driving the
//! multiversioned memory substrate from `sitm-mvm` under the timing
//! model from `sitm-sim`:
//!
//! * [`SiTm`] — the paper's contribution (section 4): snapshot reads,
//!   invisible readers, lazy timestamp-based write-write validation,
//!   free read-only commits, unbounded transactions via transient
//!   version spill.
//! * [`SsiTm`] — serializable snapshot isolation (section 5.2):
//!   dangerous-structure detection over type-based rw-dependency flags.
//! * [`TwoPl`] — the eager requester-wins 2-phase-locking HTM baseline
//!   with perfect signatures and a bounded version buffer (section 6.1).
//! * [`Sontm`] — the conflict-serializable SONTM baseline with
//!   serializability-order-number ranges (section 6.1).
//!
//! All four implement [`sitm_sim::TmProtocol`] and can be driven either
//! directly (as the paper's hand schedules are, in this repo's
//! integration tests) or by the discrete-event engine over the workloads
//! in `sitm-workloads`.
//!
//! # Examples
//!
//! Two overlapping transactions conflict read-write; SI-TM commits both:
//!
//! ```
//! use sitm_core::SiTm;
//! use sitm_mvm::ThreadId;
//! use sitm_sim::{MachineConfig, TmProtocol, BeginOutcome, ReadOutcome, CommitOutcome};
//!
//! let mut tm = SiTm::new(&MachineConfig::with_cores(2));
//! let addr = tm.store_mut().alloc_words(1);
//! tm.store_mut().write_word(addr, 7);
//!
//! let reader = ThreadId(0);
//! let writer = ThreadId(1);
//! assert!(matches!(tm.begin(reader, 0), BeginOutcome::Started { .. }));
//! assert!(matches!(tm.begin(writer, 0), BeginOutcome::Started { .. }));
//! // The writer updates the word the reader is looking at…
//! tm.write(writer, addr, 8, 0);
//! assert!(matches!(tm.commit(writer, 0), CommitOutcome::Committed { .. }));
//! // …and the reader still commits, reading its consistent snapshot.
//! match tm.read(reader, addr, 0) {
//!     ReadOutcome::Ok { value, .. } => assert_eq!(value, 7),
//!     other => panic!("unexpected {other:?}"),
//! }
//! assert!(matches!(tm.commit(reader, 0), CommitOutcome::Committed { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod si_tm;
mod sontm;
mod ssi_tm;
mod two_pl;

pub use base::{ProtocolBase, WriteBuffer};
pub use si_tm::{SiTm, SiTmConfig};
pub use sontm::Sontm;
pub use ssi_tm::SsiTm;
pub use two_pl::TwoPl;

//! The SONTM conflict-serializability baseline (section 6.1 of the
//! paper), after Aydonat & Abdelrahman's *Hardware Support for Relaxed
//! Concurrency Control in Transactional Memory* (MICRO 2010).
//!
//! SONTM relaxes 2PL: instead of aborting on every conflict, it tracks a
//! **serializability-order-number (SON) range** `[lo, hi]` per
//! transaction and only aborts when the range becomes empty — i.e. when
//! no position in a global serial order is consistent with all observed
//! conflicts. The constraints:
//!
//! * **Flow dependency** (I read a value committed by W): I must
//!   serialize after W, so `lo = max(lo, son(W) + 1)`. Realized through
//!   the *global write-numbers table* mapping each line to the SON of
//!   its last committed writer.
//! * **Committed-reader anti-dependency** (a committed R read a line I
//!   overwrite): I must serialize after R, so `lo = max(lo, son(R) + 1)`.
//!   Realized through a per-line *read-numbers* table holding the
//!   maximum SON of any committed reader (the bounded equivalent of the
//!   paper's per-core read-history tables, which it models as infinite).
//! * **In-flight-reader anti-dependency** (an active A read a line I
//!   commit): A read the old value, so A must serialize before me:
//!   `A.hi = min(A.hi, my_son - 1)`.
//! * **In-flight-writer ordering** (an active A has also written a line I
//!   commit): A's eventual in-place commit overwrites mine, so A must
//!   serialize after me: `A.lo = max(A.lo, my_son + 1)`.
//!
//! A transaction whose range empties discovers it at commit and aborts
//! with [`AbortCause::Order`] (the paper evaluates the conflict flags at
//! commit). A successful committer picks `son = lo`, broadcasts its write
//! set (charged per core), tags its writes in the write-numbers table and
//! its reads in the read-numbers table, and writes back in place under
//! the commit token.
//!
//! This reproduces the paper's motivating schedules: in Figure 2, TX0 and
//! TX1 commit while TX2 and TX3 abort; in Figure 6, the long
//! reader aborts under CS but commits under SSI-TM.

use std::collections::HashMap;

use sitm_mvm::{Addr, LineAddr, MvmStore, ThreadId, Word};
use sitm_obs::ForensicCause;
use sitm_sim::{
    AbortCause, AbortDetail, BeginOutcome, CommitOutcome, Cycles, MachineConfig, ReadOutcome,
    TmProtocol, WriteOutcome,
};

use crate::base::{LineSet, ProtocolBase, TouchedLines, WriteBuffer};

/// SON values; `NO_BOUND` marks an unconstrained upper limit.
type Son = u64;
const NO_BOUND: Son = u64::MAX;

/// Per-transaction state.
#[derive(Debug)]
struct SontmTx {
    lo: Son,
    hi: Son,
    read_set: LineSet,
    writes: WriteBuffer,
    touched: TouchedLines,
    /// The last constraint that tightened `[lo, hi]`: the line it came
    /// through and the SON of the committed transaction that imposed it.
    /// When the range empties at commit, this names the culprit for
    /// abort forensics.
    pinch: Option<(LineAddr, Son)>,
}

impl Default for SontmTx {
    fn default() -> Self {
        SontmTx {
            lo: 0,
            hi: NO_BOUND,
            read_set: LineSet::new(),
            writes: WriteBuffer::new(),
            touched: TouchedLines::new(),
            pinch: None,
        }
    }
}

/// The SONTM conflict-serializable baseline. See the module docs above.
#[derive(Debug)]
pub struct Sontm {
    base: ProtocolBase,
    txs: Vec<Option<SontmTx>>,
    /// SON of the last committed writer, per line ("global write numbers
    /// hashtable in main memory").
    write_numbers: HashMap<LineAddr, Son>,
    /// Maximum SON of any committed reader, per line (bounded read
    /// history).
    read_numbers: HashMap<LineAddr, Son>,
    /// Per-line hashing cost for the write-numbers table.
    hash_cost: Cycles,
    token_busy_until: Cycles,
    cores: usize,
    /// Per-thread detail of the most recent abort site.
    last_aborts: Vec<AbortDetail>,
}

impl Sontm {
    /// Builds the baseline for machine `cfg`.
    pub fn new(machine: &MachineConfig) -> Self {
        Sontm {
            base: ProtocolBase::new(MvmStore::new(), machine),
            txs: (0..machine.cores).map(|_| None).collect(),
            write_numbers: HashMap::new(),
            read_numbers: HashMap::new(),
            hash_cost: machine.sontm_hash_cost,
            token_busy_until: 0,
            cores: machine.cores,
            last_aborts: vec![AbortDetail::default(); machine.cores],
        }
    }

    fn tx(&mut self, tid: ThreadId) -> &mut SontmTx {
        self.txs[tid.0]
            .as_mut()
            .expect("operation outside a transaction")
    }

    fn teardown(&mut self, tid: ThreadId) -> Option<SontmTx> {
        let tx = self.txs[tid.0].take()?;
        self.base
            .mem
            .invalidate_own(tid.0, tx.touched.iter().copied());
        Some(tx)
    }
}

impl TmProtocol for Sontm {
    fn name(&self) -> &'static str {
        "SONTM"
    }

    fn begin(&mut self, tid: ThreadId, _now: Cycles) -> BeginOutcome {
        debug_assert!(self.txs[tid.0].is_none(), "nested begin");
        self.txs[tid.0] = Some(SontmTx::default());
        BeginOutcome::Started {
            cycles: self.base.begin_cost,
            victims: vec![],
        }
    }

    fn read(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> ReadOutcome {
        let line = addr.line();
        if let Some(value) = self.tx(tid).writes.get(addr) {
            let cycles = self.base.mem.l1_write(tid.0, line);
            return ReadOutcome::Ok {
                value,
                cycles,
                victims: vec![],
            };
        }
        // Flow dependency: serialize after the last committed writer of
        // this line.
        let wn = self.write_numbers.get(&line).copied();
        let tx = self.tx(tid);
        if let Some(wn) = wn {
            if wn.saturating_add(1) > tx.lo {
                tx.lo = wn.saturating_add(1);
                tx.pinch = Some((line, wn));
            }
        }
        tx.read_set.insert(line);
        tx.touched.insert(line);
        let (cycles, _) = self.base.mem.access(tid.0, line);
        // The read-own-writes check above returned `None` for this exact
        // address, so no buffered write can affect the word read.
        let base_data = self.base.store.read_line(line);
        ReadOutcome::Ok {
            value: base_data[addr.offset()],
            cycles: cycles + self.hash_cost,
            victims: vec![],
        }
    }

    fn write(&mut self, tid: ThreadId, addr: Addr, value: Word, _now: Cycles) -> WriteOutcome {
        let line = addr.line();
        let tx = self.tx(tid);
        tx.writes.insert(addr, value);
        tx.touched.insert(line);
        let cycles = self.base.mem.l1_write(tid.0, line);
        WriteOutcome::Ok {
            cycles,
            victims: vec![],
        }
    }

    fn promote(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> WriteOutcome {
        // Conflict serializability already orders readers and writers;
        // promotion is a read-set membership (idempotent).
        let line = addr.line();
        let tx = self.tx(tid);
        tx.read_set.insert(line);
        WriteOutcome::Ok {
            cycles: 1,
            victims: vec![],
        }
    }

    fn commit(&mut self, tid: ThreadId, now: Cycles) -> CommitOutcome {
        let tx = self.txs[tid.0]
            .as_ref()
            .expect("commit outside transaction");
        let write_lines: Vec<LineAddr> = tx.writes.lines().collect();
        let read_lines: Vec<LineAddr> = tx.read_set.iter().copied().collect();
        let mut lo = tx.lo;
        let hi = tx.hi;
        let mut pinch = tx.pinch;
        let mut cycles: Cycles = 0;

        // Final lower-bound constraints from the committed state: writers
        // serialize after the previous writer and after every committed
        // reader of each written line.
        for &line in &write_lines {
            cycles += self.hash_cost;
            if let Some(&wn) = self.write_numbers.get(&line) {
                if wn.saturating_add(1) > lo {
                    lo = wn.saturating_add(1);
                    pinch = Some((line, wn));
                }
            }
            if let Some(&rn) = self.read_numbers.get(&line) {
                if rn.saturating_add(1) > lo {
                    lo = rn.saturating_add(1);
                    pinch = Some((line, rn));
                }
            }
        }

        if lo > hi {
            // An empty SON range is a validation failure of the read/write
            // order; the pinch names the line and committed SON at fault.
            self.last_aborts[tid.0] = AbortDetail {
                cause: Some(ForensicCause::ReadValidation),
                line: pinch.map(|(l, _)| l.0),
                winner_ts: pinch.map(|(_, son)| son),
                snapshot_ts: None,
            };
            let rollback = self.rollback(tid);
            return CommitOutcome::Abort {
                cause: AbortCause::Order,
                cycles: cycles + rollback,
                victims: vec![],
            };
        }
        let son = lo;

        // Broadcast the write set: every other core compares it against
        // its read history ("each entry in the read-history table...").
        if !write_lines.is_empty() {
            cycles += self.base.mem.broadcast_cost()
                + (self.cores as Cycles - 1) * write_lines.len() as Cycles;
        }

        // Clamp the SON ranges of in-flight transactions that conflict
        // with this commit. Their emptiness is discovered at their own
        // commit, matching SONTM's commit-time conflict-flag evaluation.
        for i in 0..self.txs.len() {
            if i == tid.0 {
                continue;
            }
            if let Some(other) = self.txs[i].as_mut() {
                for &line in &write_lines {
                    // Anti-dependency: the active reader saw the old
                    // value, so it serializes before this commit.
                    if other.read_set.contains(&line) && son.saturating_sub(1) < other.hi {
                        other.hi = son.saturating_sub(1);
                        other.pinch = Some((line, son));
                    }
                    // Write ordering: the active writer will overwrite
                    // this commit's value in place, so it serializes
                    // after.
                    if other.writes.touches_line(line) && son.saturating_add(1) > other.lo {
                        other.lo = son.saturating_add(1);
                        other.pinch = Some((line, son));
                    }
                }
            }
        }

        // Publish: tag writes in the write-numbers table, reads in the
        // read-numbers table.
        for &line in &write_lines {
            let e = self.write_numbers.entry(line).or_insert(0);
            *e = (*e).max(son);
        }
        for &line in &read_lines {
            cycles += self.hash_cost;
            let e = self.read_numbers.entry(line).or_insert(0);
            *e = (*e).max(son);
        }

        // Write back in place. The commit token is held for a short
        // arbitration window only (the SON mechanism already ordered
        // the writers); write-back latency is paid by the committer and
        // overlaps between cores.
        const TOKEN_HOLD: Cycles = 12;
        if !write_lines.is_empty() {
            let wait = self.token_busy_until.saturating_sub(now);
            cycles += wait;
            for &line in &write_lines {
                let base_data = self.base.store.read_line(line);
                let data = self.txs[tid.0]
                    .as_ref()
                    .unwrap()
                    .writes
                    .apply_to(line, base_data);
                self.base.store.write_line(line, data);
                cycles += self.base.mem.writeback(tid.0, line);
                self.base.mem.invalidate_others(tid.0, line);
            }
            self.token_busy_until = now + wait + TOKEN_HOLD;
        }

        self.teardown(tid);
        CommitOutcome::Committed {
            cycles,
            victims: vec![],
        }
    }

    fn rollback(&mut self, tid: ThreadId) -> Cycles {
        match self.teardown(tid) {
            Some(tx) => self.base.rollback_cost + tx.writes.line_count() as Cycles,
            None => 0,
        }
    }

    fn store(&self) -> &MvmStore {
        &self.base.store
    }

    fn store_mut(&mut self) -> &mut MvmStore {
        &mut self.base.store
    }

    fn last_abort_detail(&self, tid: ThreadId) -> AbortDetail {
        self.last_aborts[tid.0]
    }
}

impl sitm_obs::Observable for Sontm {
    fn export_metrics(&self, reg: &mut sitm_obs::MetricsRegistry) {
        sitm_obs::Observable::export_metrics(&self.base.store, reg);
        reg.count("sontm.write_numbers.lines", self.write_numbers.len() as u64);
        reg.count("sontm.read_numbers.lines", self.read_numbers.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(p: &mut Sontm, t: usize) {
        match p.begin(ThreadId(t), 0) {
            BeginOutcome::Started { .. } => {}
            other => panic!("begin failed: {other:?}"),
        }
    }

    fn read(p: &mut Sontm, t: usize, a: Addr) -> Word {
        match p.read(ThreadId(t), a, 0) {
            ReadOutcome::Ok { value, .. } => value,
            other => panic!("read aborted: {other:?}"),
        }
    }

    fn write(p: &mut Sontm, t: usize, a: Addr, v: Word) {
        match p.write(ThreadId(t), a, v, 0) {
            WriteOutcome::Ok { .. } => {}
            other => panic!("write aborted: {other:?}"),
        }
    }

    fn commit(p: &mut Sontm, t: usize) -> Result<(), AbortCause> {
        match p.commit(ThreadId(t), 0) {
            CommitOutcome::Committed { .. } => Ok(()),
            CommitOutcome::Abort { cause, .. } => Err(cause),
        }
    }

    /// A read-write conflict alone does not abort: the reader serializes
    /// before the writer.
    #[test]
    fn single_antidependency_commits() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = Sontm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        p.store_mut().write_word(a, 1);

        begin(&mut p, 0);
        begin(&mut p, 1);
        assert_eq!(read(&mut p, 0, a), 1);
        write(&mut p, 1, a, 2);
        assert_eq!(commit(&mut p, 1), Ok(()), "writer commits");
        // Reader read the old value: serializes before the writer.
        assert_eq!(commit(&mut p, 0), Ok(()));
    }

    /// The Figure 6 schedule: a long reader observes A before an
    /// overlapping writer commits and D after — a temporal cycle that
    /// conflict serializability cannot order.
    #[test]
    fn figure6_temporal_cycle_aborts_reader() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = Sontm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        let d = p.store_mut().alloc_words(1);

        begin(&mut p, 0); // TX0: long reader
        begin(&mut p, 1); // TX1: writer of A and D
        assert_eq!(read(&mut p, 0, a), 0); // reads old A
        write(&mut p, 1, a, 1);
        write(&mut p, 1, d, 1);
        assert_eq!(commit(&mut p, 1), Ok(()));
        // TX0 now reads D *after* TX1's commit: flow dependency forces
        // TX0 after TX1, but the anti-dependency on A forced it before.
        assert_eq!(read(&mut p, 0, d), 1);
        assert_eq!(commit(&mut p, 0), Err(AbortCause::Order));
    }

    /// An Order abort carries a forensic detail naming the line whose
    /// constraint emptied the SON range and the committed SON at fault.
    #[test]
    fn abort_detail_names_the_pinching_line() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = Sontm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        let d = p.store_mut().alloc_words(1);

        begin(&mut p, 0);
        begin(&mut p, 1);
        assert_eq!(read(&mut p, 0, a), 0);
        write(&mut p, 1, a, 1);
        write(&mut p, 1, d, 1);
        assert_eq!(commit(&mut p, 1), Ok(()));
        assert_eq!(read(&mut p, 0, d), 1); // flow dep raises lo past hi
        assert_eq!(commit(&mut p, 0), Err(AbortCause::Order));
        let detail = p.last_abort_detail(ThreadId(0));
        assert_eq!(detail.cause, Some(ForensicCause::ReadValidation));
        assert_eq!(
            detail.line,
            Some(d.line().0),
            "last pinch was the flow dep on d"
        );
        assert_eq!(detail.winner_ts, Some(p.write_numbers[&d.line()]));
    }

    /// Committed-reader anti-dependency: a writer starting *after* a
    /// reader committed must still serialize after it.
    #[test]
    fn committed_reader_constrains_later_writer() {
        let cfg = MachineConfig::with_cores(3);
        let mut p = Sontm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        let b = p.store_mut().alloc_words(1);

        // TX0 writes b (son becomes, say, s0).
        begin(&mut p, 0);
        write(&mut p, 0, b, 1);
        assert_eq!(commit(&mut p, 0), Ok(()));
        // TX1 reads a (old) and b (new, flow dep from TX0): son > s0.
        begin(&mut p, 1);
        let _ = read(&mut p, 1, a);
        let _ = read(&mut p, 1, b);
        assert_eq!(commit(&mut p, 1), Ok(()));
        // TX2 writes a. It must serialize after TX1 (which read old a).
        begin(&mut p, 2);
        write(&mut p, 2, a, 9);
        assert_eq!(commit(&mut p, 2), Ok(()));
        // The read-numbers table must have constrained TX2's SON above
        // TX1's.
        let a_line = a.line();
        let b_line = b.line();
        let son_tx2 = p.write_numbers[&a_line];
        let son_tx0 = p.write_numbers[&b_line];
        assert!(son_tx2 > son_tx0, "TX2 after TX1 after TX0");
    }

    /// Read-modify-write on the same cell by two overlapping
    /// transactions cannot both commit (the kmeans pattern: CS does not
    /// help).
    #[test]
    fn overlapping_rmw_aborts_second() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = Sontm::new(&cfg);
        let a = p.store_mut().alloc_words(1);

        begin(&mut p, 0);
        begin(&mut p, 1);
        let v0 = read(&mut p, 0, a);
        let v1 = read(&mut p, 1, a);
        write(&mut p, 0, a, v0 + 1);
        write(&mut p, 1, a, v1 + 1);
        assert_eq!(commit(&mut p, 0), Ok(()));
        assert_eq!(commit(&mut p, 1), Err(AbortCause::Order));
        assert_eq!(p.store().read_word(a), 1, "no lost update");
    }

    /// Disjoint transactions proceed without constraints.
    #[test]
    fn disjoint_transactions_all_commit() {
        let cfg = MachineConfig::with_cores(4);
        let mut p = Sontm::new(&cfg);
        let base = p.store_mut().alloc_lines(4).first_word();
        for t in 0..4 {
            begin(&mut p, t);
        }
        for t in 0..4u64 {
            let a = Addr(base.0 + t * 8);
            let v = read(&mut p, t as usize, a);
            write(&mut p, t as usize, a, v + 10);
        }
        for t in 0..4 {
            assert_eq!(commit(&mut p, t), Ok(()));
        }
    }

    /// The Figure 2 schedule under CS: TX0 and TX1 commit, TX2 aborts.
    #[test]
    fn figure2_schedule() {
        let cfg = MachineConfig::with_cores(4);
        let mut p = Sontm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        let b = p.store_mut().alloc_words(1);
        let c = p.store_mut().alloc_words(1);

        begin(&mut p, 0); // TX0: read A, write A, write B
        begin(&mut p, 1); // TX1: read A
        begin(&mut p, 2); // TX2: read B, write C, read A (after TX0 commit)

        let _ = read(&mut p, 0, a);
        let _ = read(&mut p, 1, a);
        let _ = read(&mut p, 2, b); // old B
        write(&mut p, 0, a, 1);
        write(&mut p, 0, b, 1);
        write(&mut p, 2, c, 1);
        assert_eq!(commit(&mut p, 0), Ok(()), "TX0 commits");
        assert_eq!(commit(&mut p, 1), Ok(()), "TX1 serializes before TX0");
        let _ = read(&mut p, 2, a); // new A: flow dep from TX0
        assert_eq!(
            commit(&mut p, 2),
            Err(AbortCause::Order),
            "TX2 is cyclically dependent on TX0"
        );
    }

    #[test]
    fn rollback_is_idempotent() {
        let cfg = MachineConfig::with_cores(1);
        let mut p = Sontm::new(&cfg);
        assert_eq!(p.rollback(ThreadId(0)), 0);
        begin(&mut p, 0);
        write(&mut p, 0, Addr(0), 1);
        assert!(p.rollback(ThreadId(0)) > 0);
        assert_eq!(p.rollback(ThreadId(0)), 0);
    }
}

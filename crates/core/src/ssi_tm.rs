//! SSI-TM: serializable snapshot isolation (section 5.2 of the paper).
//!
//! SI permits the write-skew anomaly. The paper sketches a hardware
//! extension that makes SI-TM fully serializable by detecting *dangerous
//! situations*: a transaction that has both an **incoming** and an
//! **outgoing** read-write dependency is the potential pivot of a
//! dependency cycle and is aborted (safe, but may introduce false
//! positives). Crucially the dependencies are *type-based*, not temporal:
//! a transaction that only ever acts as the reader in its conflicts (like
//! the long scan of Figure 6) accumulates dependencies of a single kind
//! and commits, where conflict serializability would abort it.
//!
//! On top of the SI-TM machinery this model adds:
//!
//! * read-set tracking (SI proper needs none),
//! * a per-transaction *reader-conflict* flag (an outgoing
//!   rw-dependency), set when the transaction reads a line for which a
//!   newer committed version exists (it read old data that an
//!   overlapping transaction overwrote),
//! * a per-transaction *writer-conflict* flag (an incoming
//!   rw-dependency), set at commit when the write set intersects the
//!   read set of an active transaction, or of a transaction that
//!   committed during this transaction's lifetime,
//! * the abort rule: a transaction observed with both flags aborts
//!   ([`AbortCause::Order`]); the committer dooms conflicting active
//!   readers whose flags complete a dangerous structure.
//!
//! Because versioning is lazy, a transaction's rw-edges can keep
//! materialising *after* it commits: a later reader observes old data
//! the committed transaction overwrote (completing its incoming edge),
//! or a later committer overwrites data it read (completing its
//! outgoing edge). The committed-transaction window therefore retains
//! both flags alongside the read and write sets (the analogue of Cahill
//! et al.'s committed-pivot tracking), and the transaction whose action
//! completes a committed pivot's second flag aborts itself — it is too
//! late to abort the pivot.
//!
//! Write-write conflicts abort exactly as in SI-TM.

use sitm_mvm::{Addr, GlobalClock, LineAddr, MvmStore, ThreadId, Timestamp, Word};
use sitm_obs::ForensicCause;
use sitm_sim::{
    AbortCause, AbortDetail, BeginOutcome, CommitOutcome, Cycles, MachineConfig, ReadOutcome,
    TmProtocol, Victims, WriteOutcome,
};

use crate::base::{LineSet, ProtocolBase, TouchedLines, WriteBuffer};

/// Per-transaction state.
#[derive(Debug, Default)]
struct SsiTx {
    start: Timestamp,
    writes: WriteBuffer,
    read_set: LineSet,
    touched: TouchedLines,
    /// This transaction read data an overlapping transaction overwrote
    /// (it is the reader of an rw-dependency).
    reader_conflict: bool,
    /// This transaction wrote data an overlapping transaction read (it
    /// is the writer of an rw-dependency).
    writer_conflict: bool,
}

/// Footprint and conflict flags of a recently committed transaction,
/// retained while active transactions overlap its lifetime: its rw-edges
/// can still be completed by later reads and commits (lazy versioning),
/// at which point a committed pivot can only be resolved by aborting the
/// transaction that completed the structure.
#[derive(Debug)]
struct CommittedTx {
    end: Timestamp,
    read_set: LineSet,
    write_set: LineSet,
    /// Incoming rw-dependency: someone read old data this transaction
    /// overwrote (its `writer_conflict` at commit, or marked later).
    in_conflict: bool,
    /// Outgoing rw-dependency: this transaction read old data someone
    /// overwrote (its `reader_conflict` at commit, or marked later).
    out_conflict: bool,
}

/// The serializable-SI protocol model. See the module docs above.
#[derive(Debug)]
pub struct SsiTm {
    base: ProtocolBase,
    clock: GlobalClock,
    txs: Vec<Option<SsiTx>>,
    /// Committed transactions still overlapping someone.
    committed_window: Vec<CommittedTx>,
    /// Per-thread timestamp of the version served by the most recent
    /// successful read (`None` for read-own-write), reported to the
    /// history recorder.
    last_reads: Vec<Option<u64>>,
    /// Per-thread end timestamp of the most recent successful commit
    /// (`None` when nothing was installed), reported to the history
    /// recorder.
    last_commits: Vec<Option<u64>>,
    /// Per-thread detail of the most recent abort site.
    last_aborts: Vec<AbortDetail>,
}

impl SsiTm {
    /// Builds an SSI-TM model for machine `cfg`.
    pub fn new(machine: &MachineConfig) -> Self {
        SsiTm {
            base: ProtocolBase::new(MvmStore::new(), machine),
            clock: GlobalClock::new(machine.cores),
            txs: (0..machine.cores).map(|_| None).collect(),
            committed_window: Vec::new(),
            last_reads: vec![None; machine.cores],
            last_commits: vec![None; machine.cores],
            last_aborts: vec![AbortDetail::default(); machine.cores],
        }
    }

    fn tx(&mut self, tid: ThreadId) -> &mut SsiTx {
        self.txs[tid.0]
            .as_mut()
            .expect("operation outside a transaction")
    }

    fn teardown(&mut self, tid: ThreadId) -> Option<SsiTx> {
        let tx = self.txs[tid.0].take()?;
        self.base.store.unregister_transaction(tid);
        self.base
            .mem
            .invalidate_own(tid.0, tx.touched.iter().copied());
        self.prune_committed_window();
        Some(tx)
    }

    /// Drops committed-transaction records that no active transaction
    /// overlaps any more.
    fn prune_committed_window(&mut self) {
        let oldest_active = self.base.store.active().oldest_start();
        match oldest_active {
            None => self.committed_window.clear(),
            Some(oldest) => self.committed_window.retain(|c| c.end > oldest),
        }
    }
}

impl TmProtocol for SsiTm {
    fn name(&self) -> &'static str {
        "SSI-TM"
    }

    fn begin(&mut self, tid: ThreadId, _now: Cycles) -> BeginOutcome {
        debug_assert!(self.txs[tid.0].is_none(), "nested begin");
        let start = self
            .clock
            .begin()
            .expect("64-bit timestamp space exhausted");
        self.base.store.register_transaction(tid, start);
        self.txs[tid.0] = Some(SsiTx {
            start,
            ..SsiTx::default()
        });
        BeginOutcome::Started {
            cycles: self.base.begin_cost,
            victims: vec![],
        }
    }

    fn read(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> ReadOutcome {
        let line = addr.line();
        if let Some(value) = self.tx(tid).writes.get(addr) {
            self.last_reads[tid.0] = None;
            let cycles = self.base.mem.l1_write(tid.0, line);
            return ReadOutcome::Ok {
                value,
                cycles,
                victims: vec![],
            };
        }
        let start = self.tx(tid).start;
        // Word-granular snapshot read: the read-own-writes check above
        // returned `None` for this exact address, so no buffered write
        // can affect the word read and the full line image is never
        // needed.
        let (value, served_ts) = self
            .base
            .store
            .read_word_snapshot_ts(addr, start)
            .expect("default policy never discards reachable snapshots");
        self.last_reads[tid.0] = Some(served_ts.0);
        // Reading old data that a later commit overwrote: this
        // transaction is the reader of an rw-dependency.
        let read_old = self.base.store.newer_than(line, start);
        let mut committed_pivot = false;
        if read_old {
            // The overlapping committed writers of the newer versions
            // gain an incoming rw-edge. One that committed already
            // carrying an outgoing edge becomes a complete pivot; the
            // only transaction left to abort is this reader.
            for c in &mut self.committed_window {
                if c.end > start && c.write_set.contains(&line) {
                    c.in_conflict = true;
                    if c.out_conflict {
                        committed_pivot = true;
                    }
                }
            }
        }
        let tx = self.tx(tid);
        tx.read_set.insert(line);
        tx.touched.insert(line);
        if read_old {
            tx.reader_conflict = true;
            if tx.writer_conflict || committed_pivot {
                // Dangerous structure: both flag kinds on one
                // transaction (this one, or a committed writer it read
                // around).
                self.last_aborts[tid.0] = AbortDetail {
                    cause: Some(ForensicCause::SsiPivot),
                    line: Some(line.0),
                    winner_ts: self.base.store.newest_ts(line).map(|ts| ts.0),
                    snapshot_ts: Some(start.0),
                };
                let cycles = self.rollback(tid);
                return ReadOutcome::Abort {
                    cause: AbortCause::Order,
                    cycles,
                    victims: vec![],
                };
            }
        }
        let cycles = self.base.mem.mvm_access(tid.0, line);
        ReadOutcome::Ok {
            value,
            cycles,
            victims: vec![],
        }
    }

    fn write(&mut self, tid: ThreadId, addr: Addr, value: Word, _now: Cycles) -> WriteOutcome {
        let line = addr.line();
        let tx = self.tx(tid);
        tx.writes.insert(addr, value);
        tx.touched.insert(line);
        let cycles = self.base.mem.l1_write(tid.0, line);
        WriteOutcome::Ok {
            cycles,
            victims: vec![],
        }
    }

    fn promote(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> WriteOutcome {
        // SSI already validates the read set through dangerous-structure
        // detection; a promotion is just a read-set membership.
        let line = addr.line();
        self.tx(tid).read_set.insert(line);
        WriteOutcome::Ok {
            cycles: 1,
            victims: vec![],
        }
    }

    fn commit(&mut self, tid: ThreadId, _now: Cycles) -> CommitOutcome {
        let read_only = self.txs[tid.0]
            .as_ref()
            .expect("commit outside transaction")
            .writes
            .is_empty();
        if read_only {
            // A read-only transaction cannot be a pivot under SI: it
            // installs nothing, so it never gains an incoming rw-edge.
            // Record its reads for writers that overlap it, then commit
            // free of charge.
            let end = self.clock.now();
            let tx = self.txs[tid.0].as_ref().unwrap();
            self.committed_window.push(CommittedTx {
                end,
                read_set: tx.read_set.clone(),
                write_set: LineSet::new(),
                in_conflict: false,
                out_conflict: tx.reader_conflict,
            });
            self.last_commits[tid.0] = None;
            self.teardown(tid);
            return CommitOutcome::Committed {
                cycles: 0,
                victims: vec![],
            };
        }

        let end = self
            .clock
            .reserve_end()
            .expect("64-bit timestamp space exhausted");
        let start = self.txs[tid.0].as_ref().unwrap().start;
        let lines: Vec<LineAddr> = self.txs[tid.0].as_ref().unwrap().writes.lines().collect();
        let mut cycles: Cycles = 0;

        // Write-write validation, exactly as SI-TM.
        let mut ww_conflict: Option<LineAddr> = None;
        for &line in &lines {
            cycles += self.base.per_line_validate_cost;
            if self.base.store.newer_than(line, start) {
                ww_conflict = Some(line);
                break;
            }
        }
        if let Some(line) = ww_conflict {
            self.last_aborts[tid.0] = AbortDetail {
                cause: Some(ForensicCause::WriteWriteFcw),
                line: Some(line.0),
                winner_ts: self.base.store.newest_ts(line).map(|ts| ts.0),
                snapshot_ts: Some(start.0),
            };
            let rollback = self.rollback(tid);
            self.clock.finish_commit(end);
            return CommitOutcome::Abort {
                cause: AbortCause::WriteWrite,
                cycles: cycles + rollback,
                victims: vec![],
            };
        }

        // Dangerous-structure detection. My write set against:
        // (a) active transactions' read sets,
        // (b) committed transactions that overlapped me.
        let mut writer_conflict = self.txs[tid.0].as_ref().unwrap().writer_conflict;
        // The line through which the dangerous structure materialised,
        // for abort forensics.
        let mut danger_line: Option<LineAddr> = None;
        let mut victims: Victims = vec![];
        for i in 0..self.txs.len() {
            if i == tid.0 {
                continue;
            }
            let Some(other) = self.txs[i].as_mut() else {
                continue;
            };
            if let Some(&overlap) = lines.iter().find(|l| other.read_set.contains(l)) {
                writer_conflict = true;
                danger_line.get_or_insert(overlap);
                // The active reader is now the reader of an
                // rw-dependency; if it is already a writer-conflict
                // party, it forms a dangerous structure and aborts.
                other.reader_conflict = true;
                if other.writer_conflict {
                    self.last_aborts[i] = AbortDetail {
                        cause: Some(ForensicCause::SsiPivot),
                        line: Some(overlap.0),
                        winner_ts: Some(end.0),
                        snapshot_ts: Some(other.start.0),
                    };
                    victims.push((ThreadId(i), AbortCause::Order));
                }
            }
        }
        let mut committed_pivot = false;
        for c in &mut self.committed_window {
            // Overlap: the committed reader's lifetime intersected mine.
            if c.end > start {
                if let Some(&overlap) = lines.iter().find(|l| c.read_set.contains(l)) {
                    writer_conflict = true;
                    danger_line.get_or_insert(overlap);
                    // The committed reader gains an outgoing rw-edge. If it
                    // already carries an incoming one it is a complete
                    // pivot, and this commit is the only abortable party.
                    c.out_conflict = true;
                    if c.in_conflict {
                        committed_pivot = true;
                    }
                }
            }
        }
        let reader_conflict = self.txs[tid.0].as_ref().unwrap().reader_conflict;
        if (writer_conflict && reader_conflict) || committed_pivot {
            self.last_aborts[tid.0] = AbortDetail {
                cause: Some(ForensicCause::SsiPivot),
                line: danger_line.map(|l| l.0),
                winner_ts: None,
                snapshot_ts: Some(start.0),
            };
            let rollback = self.rollback(tid);
            self.clock.finish_commit(end);
            return CommitOutcome::Abort {
                cause: AbortCause::Order,
                cycles: cycles + rollback,
                victims,
            };
        }

        // Done reading: release the snapshot so the committer's own
        // start does not inhibit coalescing.
        self.base.store.unregister_transaction(tid);
        // Install, as SI-TM (default policy: unbounded aborts cannot
        // occur mid-install with the default cap unless snapshots pin
        // versions; handle the error by aborting).
        let mut installed = Vec::with_capacity(lines.len());
        for &line in &lines {
            let newest = self.base.store.read_line(line);
            let data = self.txs[tid.0]
                .as_ref()
                .unwrap()
                .writes
                .apply_to(line, newest);
            cycles += self.base.mem.writeback(tid.0, line);
            if self.base.store.install(line, end, data).is_err() {
                for &l in &installed {
                    self.base.store.remove_installed(l, end);
                }
                self.last_aborts[tid.0] = AbortDetail {
                    cause: Some(ForensicCause::CapacityEviction),
                    line: Some(line.0),
                    winner_ts: self.base.store.newest_ts(line).map(|ts| ts.0),
                    snapshot_ts: Some(start.0),
                };
                let rollback = self.rollback(tid);
                self.clock.finish_commit(end);
                return CommitOutcome::Abort {
                    cause: AbortCause::VersionOverflow,
                    cycles: cycles + rollback,
                    victims,
                };
            }
            installed.push(line);
        }

        // Retain my footprint and flags while I overlap someone: later
        // reads and commits can still complete my rw-edges.
        let tx = self.txs[tid.0].as_ref().unwrap();
        self.committed_window.push(CommittedTx {
            end,
            read_set: tx.read_set.clone(),
            write_set: lines.iter().copied().collect(),
            in_conflict: writer_conflict,
            out_conflict: reader_conflict,
        });
        self.last_commits[tid.0] = Some(end.0);
        self.teardown(tid);
        self.clock.finish_commit(end);
        CommitOutcome::Committed { cycles, victims }
    }

    fn rollback(&mut self, tid: ThreadId) -> Cycles {
        match self.teardown(tid) {
            Some(tx) => self.base.rollback_cost + tx.writes.line_count() as Cycles,
            None => 0,
        }
    }

    fn store(&self) -> &MvmStore {
        &self.base.store
    }

    fn store_mut(&mut self) -> &mut MvmStore {
        &mut self.base.store
    }

    fn begin_ts(&self, tid: ThreadId) -> Option<u64> {
        self.txs[tid.0].as_ref().map(|tx| tx.start.0)
    }

    fn last_commit_ts(&self, tid: ThreadId) -> Option<u64> {
        self.last_commits[tid.0]
    }

    fn last_read_version(&self, tid: ThreadId) -> Option<u64> {
        self.last_reads[tid.0]
    }

    fn epoch(&self) -> u64 {
        self.clock.overflows()
    }

    fn last_abort_detail(&self, tid: ThreadId) -> AbortDetail {
        self.last_aborts[tid.0]
    }
}

impl sitm_obs::Observable for SsiTm {
    fn export_metrics(&self, reg: &mut sitm_obs::MetricsRegistry) {
        sitm_obs::Observable::export_metrics(&self.base.store, reg);
        reg.count("ssi_tm.clock.overflows", self.clock.overflows());
        reg.count(
            "ssi_tm.committed_window.retained",
            self.committed_window.len() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(p: &mut SsiTm, t: usize) {
        match p.begin(ThreadId(t), 0) {
            BeginOutcome::Started { .. } => {}
            other => panic!("begin failed: {other:?}"),
        }
    }

    fn read(p: &mut SsiTm, t: usize, a: Addr) -> Result<Word, AbortCause> {
        match p.read(ThreadId(t), a, 0) {
            ReadOutcome::Ok { value, .. } => Ok(value),
            ReadOutcome::Abort { cause, .. } => Err(cause),
        }
    }

    fn write(p: &mut SsiTm, t: usize, a: Addr, v: Word) {
        match p.write(ThreadId(t), a, v, 0) {
            WriteOutcome::Ok { .. } => {}
            other => panic!("write aborted: {other:?}"),
        }
    }

    fn commit(p: &mut SsiTm, t: usize) -> Result<Victims, AbortCause> {
        match p.commit(ThreadId(t), 0) {
            CommitOutcome::Committed { victims, .. } => Ok(victims),
            CommitOutcome::Abort { cause, .. } => Err(cause),
        }
    }

    /// The write-skew schedule of Listing 1: two withdrawals each read
    /// both balances and write disjoint ones. Plain SI commits both
    /// (violating the invariant); SSI-TM must abort one.
    #[test]
    fn write_skew_is_prevented() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = SsiTm::new(&cfg);
        let checking = p.store_mut().alloc_words(1); // own line
        let saving = p.store_mut().alloc_lines(1).word(0); // own line
        p.store_mut().write_word(checking, 60);
        p.store_mut().write_word(saving, 60);

        begin(&mut p, 0);
        begin(&mut p, 1);
        // Both check the invariant: checking + saving > 100.
        assert_eq!(read(&mut p, 0, checking).unwrap(), 60);
        assert_eq!(read(&mut p, 0, saving).unwrap(), 60);
        assert_eq!(read(&mut p, 1, checking).unwrap(), 60);
        assert_eq!(read(&mut p, 1, saving).unwrap(), 60);
        // Disjoint withdrawals of 100.
        write(&mut p, 0, checking, 0);
        write(&mut p, 1, saving, 0);

        let first = commit(&mut p, 0);
        let second = commit(&mut p, 1);
        let aborted = [first.clone(), second.clone()]
            .iter()
            .filter(|r| r.is_err())
            .count();
        assert!(
            aborted >= 1,
            "write skew must not commit on both sides: {first:?} {second:?}"
        );
        let total = p.store().read_word(checking) + p.store().read_word(saving);
        assert!(total >= 20, "invariant preserved, balance = {total}");
    }

    /// Figure 6: the long reader commits under SSI-TM (type-based
    /// dependencies), where CS aborts it.
    #[test]
    fn figure6_long_reader_commits() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = SsiTm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        let d = p.store_mut().alloc_lines(1).word(0);

        begin(&mut p, 0); // TX0: long reader
        begin(&mut p, 1); // TX1: writer
        assert_eq!(read(&mut p, 0, a).unwrap(), 0); // old A
        write(&mut p, 1, a, 1);
        write(&mut p, 1, d, 1);
        assert_eq!(commit(&mut p, 1), Ok(vec![]));
        // Reads D after TX1's commit — but from its snapshot (old D).
        // Both conflicts make TX0 a reader; never a writer. It commits.
        assert_eq!(read(&mut p, 0, d).unwrap(), 0, "snapshot-consistent D");
        assert_eq!(commit(&mut p, 0), Ok(vec![]));
    }

    /// Plain read-write conflicts without a cycle commit on both sides.
    #[test]
    fn single_direction_conflicts_commit() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = SsiTm::new(&cfg);
        let a = p.store_mut().alloc_words(1);

        begin(&mut p, 0);
        begin(&mut p, 1);
        assert_eq!(read(&mut p, 0, a).unwrap(), 0);
        write(&mut p, 1, a, 5);
        assert_eq!(commit(&mut p, 1), Ok(vec![]));
        assert_eq!(commit(&mut p, 0), Ok(vec![]));
    }

    /// Write-write conflicts still abort like SI.
    #[test]
    fn write_write_aborts() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = SsiTm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        begin(&mut p, 1);
        write(&mut p, 0, a, 1);
        write(&mut p, 1, a, 2);
        assert_eq!(commit(&mut p, 0), Ok(vec![]));
        assert_eq!(commit(&mut p, 1), Err(AbortCause::WriteWrite));
    }

    /// A committed reader that overlapped the writer still triggers the
    /// writer-conflict flag (the committed-pivot case).
    #[test]
    fn committed_overlapping_reader_counts() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = SsiTm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        let b = p.store_mut().alloc_lines(1).word(0);
        p.store_mut().write_word(a, 1);
        p.store_mut().write_word(b, 1);

        // TX1 (the eventual pivot) starts first and reads b.
        begin(&mut p, 1);
        assert_eq!(read(&mut p, 1, b).unwrap(), 1);
        // TX0 reads a and b, then commits while TX1 is active.
        begin(&mut p, 0);
        assert_eq!(read(&mut p, 0, a).unwrap(), 1);
        assert_eq!(read(&mut p, 0, b).unwrap(), 1);
        assert_eq!(commit(&mut p, 0), Ok(vec![]));
        // A third transaction overwrites b and commits: TX1 becomes a
        // reader-conflict party.
        begin(&mut p, 0);
        write(&mut p, 0, b, 9);
        assert_eq!(commit(&mut p, 0), Ok(vec![]));
        let _ = read(&mut p, 1, b); // reads old b => reader flag
                                    // Now TX1 writes a — which committed TX0 (overlapping) read:
                                    // writer flag + reader flag = dangerous, abort.
        write(&mut p, 1, a, 5);
        assert_eq!(commit(&mut p, 1), Err(AbortCause::Order));
    }

    /// A pivot that committed with its incoming rw-edge set cannot be
    /// aborted any more when a later commit completes its outgoing
    /// edge; the completing committer must abort instead. (Found by
    /// `check_fuzz`: MVSG cycles escaped when the pivot's second edge
    /// materialised after its commit.)
    #[test]
    fn committed_pivot_dooms_later_committer() {
        let cfg = MachineConfig::with_cores(3);
        let mut p = SsiTm::new(&cfg);
        let x = p.store_mut().alloc_words(1);
        let y = p.store_mut().alloc_lines(1).word(0);

        begin(&mut p, 0); // TX0: active reader of x
        begin(&mut p, 1); // TX1: the pivot
        begin(&mut p, 2); // TX2: commits last, completes the pivot
        assert_eq!(read(&mut p, 0, x).unwrap(), 0);
        assert_eq!(read(&mut p, 1, y).unwrap(), 0);
        write(&mut p, 1, x, 7);
        // Pivot commits: TX0's read of x gives it the incoming edge;
        // with no outgoing edge yet it commits legitimately.
        assert_eq!(commit(&mut p, 1), Ok(vec![]));
        // TX2 overwrites y, which the committed pivot read: the pivot's
        // outgoing edge completes, so TX2 aborts.
        write(&mut p, 2, y, 9);
        assert_eq!(commit(&mut p, 2), Err(AbortCause::Order));
    }

    /// A pivot that committed with its outgoing rw-edge set is
    /// completed by a later snapshot read of data it overwrote; the
    /// reader must abort. (Found by `check_fuzz`, as above.)
    #[test]
    fn committed_pivot_dooms_later_reader() {
        let cfg = MachineConfig::with_cores(3);
        let mut p = SsiTm::new(&cfg);
        let x = p.store_mut().alloc_words(1);
        let y = p.store_mut().alloc_lines(1).word(0);

        begin(&mut p, 0); // TX0: the late reader of x
        begin(&mut p, 1); // TX1: the pivot
                          // TX2 overwrites y so the pivot's read of y is an outgoing
                          // rw-edge.
        begin(&mut p, 2);
        write(&mut p, 2, y, 3);
        assert_eq!(commit(&mut p, 2), Ok(vec![]));
        assert_eq!(read(&mut p, 1, y).unwrap(), 0, "snapshot-consistent y");
        write(&mut p, 1, x, 7);
        // Pivot commits with only the outgoing edge: legitimate.
        assert_eq!(commit(&mut p, 1), Ok(vec![]));
        // TX0's snapshot read of x observes data the committed pivot
        // overwrote: the pivot's incoming edge completes, the reader
        // aborts.
        assert_eq!(read(&mut p, 0, x), Err(AbortCause::Order));
    }

    /// Abort forensics: a write-write loser names the line and the
    /// winner's commit timestamp; a dangerous-structure abort is
    /// classified as an SSI pivot with the overlapping line.
    #[test]
    fn abort_details_classify_ww_and_pivot() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = SsiTm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        begin(&mut p, 1);
        write(&mut p, 0, a, 1);
        write(&mut p, 1, a, 2);
        assert_eq!(commit(&mut p, 0), Ok(vec![]));
        assert_eq!(commit(&mut p, 1), Err(AbortCause::WriteWrite));
        let detail = p.last_abort_detail(ThreadId(1));
        assert_eq!(detail.cause, Some(ForensicCause::WriteWriteFcw));
        assert_eq!(detail.line, Some(a.line().0));
        assert!(detail.winner_ts.unwrap() > detail.snapshot_ts.unwrap());

        // Write skew: the losing side's abort is an SSI pivot.
        let checking = p.store_mut().alloc_lines(1).word(0);
        let saving = p.store_mut().alloc_lines(1).word(0);
        begin(&mut p, 0);
        begin(&mut p, 1);
        let _ = read(&mut p, 0, checking);
        let _ = read(&mut p, 0, saving);
        let _ = read(&mut p, 1, checking);
        let _ = read(&mut p, 1, saving);
        write(&mut p, 0, checking, 1);
        write(&mut p, 1, saving, 1);
        let first = commit(&mut p, 0);
        let second = commit(&mut p, 1);
        let loser = if first.is_err() { 0 } else { 1 };
        assert!(first.is_err() || second.is_err());
        let detail = p.last_abort_detail(ThreadId(loser));
        assert_eq!(detail.cause, Some(ForensicCause::SsiPivot));
        assert!(detail.line.is_some(), "pivot names the overlapping line");
    }

    /// Read-only transactions always commit, even amid conflicts.
    #[test]
    fn read_only_always_commits() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = SsiTm::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        assert_eq!(read(&mut p, 0, a).unwrap(), 0);
        begin(&mut p, 1);
        write(&mut p, 1, a, 1);
        assert_eq!(commit(&mut p, 1), Ok(vec![]));
        let _ = read(&mut p, 0, a);
        assert_eq!(commit(&mut p, 0), Ok(vec![]));
    }
}

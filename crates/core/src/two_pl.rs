//! The 2-phase-locking HTM baseline (section 6.1 of the paper).
//!
//! A state-of-the-art eager-conflict-detection, lazy-version-management
//! HTM in the style of Bobba et al.'s *Performance Pathologies in
//! Hardware Transactional Memory*:
//!
//! * **Eager conflict detection, requester wins** — every transactional
//!   access broadcasts its address via the coherence protocol. On a
//!   *get-shared* (read), cores holding the line in their write set
//!   abort; on a *get-exclusive* (write), cores holding the line in
//!   their read **or** write set abort. The requester always proceeds.
//! * **Perfect signatures** — read and write sets are modeled as perfect
//!   bloom filters (no false positives), as in the paper's evaluation.
//! * **Lazy version management** — stores are buffered privately (the L1
//!   acts as the version buffer) and written back in place at commit
//!   while holding a global commit token.
//! * **Bounded transactions** — if the write set outgrows the version
//!   buffer, the transaction aborts with a capacity overflow (the class
//!   of abort SI-TM's unbounded design eliminates).
//!
//! Abort causes are classified for Figure 1: a victim holding the line in
//! its write set when a read arrives aborts *read-write*; a victim
//! holding it in its read set when a write arrives aborts *read-write*;
//! a victim holding it in its write set when a write arrives aborts
//! *write-write*.

use sitm_mvm::{Addr, LineAddr, MvmStore, ThreadId, Word};
use sitm_obs::ForensicCause;
use sitm_sim::{
    AbortCause, AbortDetail, BeginOutcome, CommitOutcome, Cycles, MachineConfig, ReadOutcome,
    TmProtocol, Victims, WriteOutcome,
};

use crate::base::{LineSet, ProtocolBase, TouchedLines, WriteBuffer};

/// Per-transaction state: perfect-signature read/write sets plus the
/// buffered store values.
#[derive(Debug, Default)]
struct TwoPlTx {
    read_set: LineSet,
    writes: WriteBuffer,
    touched: TouchedLines,
}

/// The eager 2PL HTM baseline. See the module docs above.
#[derive(Debug)]
pub struct TwoPl {
    base: ProtocolBase,
    txs: Vec<Option<TwoPlTx>>,
    /// Write-set capacity in lines (the L1 version buffer bound).
    capacity_lines: usize,
    /// Virtual time until which the global commit token is held.
    token_busy_until: Cycles,
    /// Per-thread detail of the most recent abort site (set when this
    /// thread is doomed by a broadcast, or self-aborts on capacity).
    last_aborts: Vec<AbortDetail>,
}

impl TwoPl {
    /// Builds the baseline for machine `cfg`.
    pub fn new(machine: &MachineConfig) -> Self {
        TwoPl {
            base: ProtocolBase::new(MvmStore::new(), machine),
            txs: (0..machine.cores).map(|_| None).collect(),
            capacity_lines: machine.version_buffer_lines(),
            token_busy_until: 0,
            last_aborts: vec![AbortDetail::default(); machine.cores],
        }
    }

    fn tx(&mut self, tid: ThreadId) -> &mut TwoPlTx {
        self.txs[tid.0]
            .as_mut()
            .expect("operation outside a transaction")
    }

    /// Victims of a get-shared broadcast for `line`: every other
    /// transaction holding it in its write set.
    fn get_shared_victims(&self, tid: ThreadId, line: LineAddr) -> Victims {
        self.txs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != tid.0)
            .filter_map(|(i, tx)| {
                let tx = tx.as_ref()?;
                tx.writes
                    .touches_line(line)
                    .then_some((ThreadId(i), AbortCause::ReadWrite))
            })
            .collect()
    }

    /// Victims of a get-exclusive broadcast for `line`: every other
    /// transaction holding it in its read set (read-write conflict) or
    /// write set (write-write conflict).
    fn get_exclusive_victims(&self, tid: ThreadId, line: LineAddr) -> Victims {
        self.txs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != tid.0)
            .filter_map(|(i, tx)| {
                let tx = tx.as_ref()?;
                if tx.writes.touches_line(line) {
                    Some((ThreadId(i), AbortCause::WriteWrite))
                } else if tx.read_set.contains(&line) {
                    Some((ThreadId(i), AbortCause::ReadWrite))
                } else {
                    None
                }
            })
            .collect()
    }

    fn teardown(&mut self, tid: ThreadId) -> Option<TwoPlTx> {
        let tx = self.txs[tid.0].take()?;
        self.base
            .mem
            .invalidate_own(tid.0, tx.touched.iter().copied());
        Some(tx)
    }
}

impl TmProtocol for TwoPl {
    fn name(&self) -> &'static str {
        "2PL"
    }

    fn begin(&mut self, tid: ThreadId, _now: Cycles) -> BeginOutcome {
        debug_assert!(self.txs[tid.0].is_none(), "nested begin");
        self.txs[tid.0] = Some(TwoPlTx::default());
        BeginOutcome::Started {
            cycles: self.base.begin_cost,
            victims: vec![],
        }
    }

    fn read(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> ReadOutcome {
        let line = addr.line();
        // Read-own-write from the buffer.
        if let Some(value) = self.tx(tid).writes.get(addr) {
            let cycles = self.base.mem.l1_write(tid.0, line);
            return ReadOutcome::Ok {
                value,
                cycles,
                victims: vec![],
            };
        }
        let victims = self.get_shared_victims(tid, line);
        // Eager conflict resolution: the requester dooms the lock holder,
        // which the forensics taxonomy classifies as a lock timeout (2PL
        // has no clock, so no timestamps are attached).
        for &(victim, _) in &victims {
            self.last_aborts[victim.0] = AbortDetail {
                cause: Some(ForensicCause::LockTimeout),
                line: Some(line.0),
                ..AbortDetail::default()
            };
        }
        let (mut cycles, served) = self.base.mem.access(tid.0, line);
        // A get-shared broadcast rides on the miss; L1 hits stay silent.
        if served != sitm_sim::ServedBy::L1 {
            cycles += self.base.mem.broadcast_cost();
        }
        let tx = self.tx(tid);
        tx.read_set.insert(line);
        tx.touched.insert(line);
        // Requester wins: the read observes committed memory (victims'
        // buffered writes were never published), and the read-own-writes
        // check above returned `None` for this exact address, so no
        // buffered write of our own can affect the word read.
        let base_data = self.base.store.read_line(line);
        ReadOutcome::Ok {
            value: base_data[addr.offset()],
            cycles,
            victims,
        }
    }

    fn write(&mut self, tid: ThreadId, addr: Addr, value: Word, _now: Cycles) -> WriteOutcome {
        let line = addr.line();
        let first_touch = !self.tx(tid).writes.touches_line(line);
        // Version-buffer capacity: the L1 cannot hold another
        // transactional line.
        if first_touch && self.tx(tid).writes.line_count() >= self.capacity_lines {
            self.last_aborts[tid.0] = AbortDetail {
                cause: Some(ForensicCause::CapacityEviction),
                line: Some(line.0),
                ..AbortDetail::default()
            };
            let cycles = self.rollback(tid);
            return WriteOutcome::Abort {
                cause: AbortCause::Capacity,
                cycles,
                victims: vec![],
            };
        }
        let victims = if first_touch {
            // Get-exclusive broadcast on the first write to the line.
            self.base.mem.invalidate_others(tid.0, line);
            self.get_exclusive_victims(tid, line)
        } else {
            vec![]
        };
        for &(victim, _) in &victims {
            self.last_aborts[victim.0] = AbortDetail {
                cause: Some(ForensicCause::LockTimeout),
                line: Some(line.0),
                ..AbortDetail::default()
            };
        }
        let tx = self.tx(tid);
        tx.writes.insert(addr, value);
        tx.touched.insert(line);
        let mut cycles = self.base.mem.l1_write(tid.0, line);
        if first_touch {
            cycles += self.base.mem.broadcast_cost();
        }
        WriteOutcome::Ok { cycles, victims }
    }

    fn promote(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> WriteOutcome {
        // Eager 2PL already protects reads; promotion is a read-set
        // membership (idempotent).
        let line = addr.line();
        let tx = self.tx(tid);
        tx.read_set.insert(line);
        WriteOutcome::Ok {
            cycles: 1,
            victims: vec![],
        }
    }

    fn commit(&mut self, tid: ThreadId, now: Cycles) -> CommitOutcome {
        let tx = self.txs[tid.0]
            .as_ref()
            .expect("commit outside transaction");
        if tx.writes.is_empty() {
            self.teardown(tid);
            return CommitOutcome::Committed {
                cycles: self.base.begin_cost,
                victims: vec![],
            };
        }
        // Serialize on the commit token for a short arbitration window
        // only: the token orders commits, while the write-back latency
        // is paid by the committer and overlaps with other cores'
        // commits (conflicting lines were already exclusively owned
        // thanks to eager detection).
        const TOKEN_HOLD: Cycles = 12;
        let wait = self.token_busy_until.saturating_sub(now);
        let mut writeback: Cycles = 0;
        let lines: Vec<LineAddr> = self.txs[tid.0].as_ref().unwrap().writes.lines().collect();
        for &line in &lines {
            let base_data = self.base.store.read_line(line);
            let data = self.txs[tid.0]
                .as_ref()
                .unwrap()
                .writes
                .apply_to(line, base_data);
            self.base.store.write_line(line, data);
            writeback += self.base.mem.writeback(tid.0, line);
        }
        self.token_busy_until = now + wait + TOKEN_HOLD;
        let cycles = wait + self.base.mem.broadcast_cost() + writeback;
        self.teardown(tid);
        CommitOutcome::Committed {
            cycles,
            victims: vec![],
        }
    }

    fn rollback(&mut self, tid: ThreadId) -> Cycles {
        match self.teardown(tid) {
            Some(tx) => self.base.rollback_cost + tx.writes.line_count() as Cycles,
            None => 0,
        }
    }

    fn store(&self) -> &MvmStore {
        &self.base.store
    }

    fn store_mut(&mut self) -> &mut MvmStore {
        &mut self.base.store
    }

    fn last_abort_detail(&self, tid: ThreadId) -> AbortDetail {
        self.last_aborts[tid.0]
    }
}

impl sitm_obs::Observable for TwoPl {
    fn export_metrics(&self, reg: &mut sitm_obs::MetricsRegistry) {
        sitm_obs::Observable::export_metrics(&self.base.store, reg);
        reg.count("two_pl.capacity_lines", self.capacity_lines as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(p: &mut TwoPl, t: usize) {
        match p.begin(ThreadId(t), 0) {
            BeginOutcome::Started { .. } => {}
            other => panic!("begin failed: {other:?}"),
        }
    }

    fn read(p: &mut TwoPl, t: usize, a: Addr) -> (Word, Victims) {
        match p.read(ThreadId(t), a, 0) {
            ReadOutcome::Ok { value, victims, .. } => (value, victims),
            other => panic!("read aborted: {other:?}"),
        }
    }

    fn write(p: &mut TwoPl, t: usize, a: Addr, v: Word) -> Victims {
        match p.write(ThreadId(t), a, v, 0) {
            WriteOutcome::Ok { victims, .. } => victims,
            other => panic!("write aborted: {other:?}"),
        }
    }

    fn commit_ok(p: &mut TwoPl, t: usize) {
        match p.commit(ThreadId(t), 0) {
            CommitOutcome::Committed { .. } => {}
            other => panic!("commit failed: {other:?}"),
        }
    }

    #[test]
    fn read_dooms_uncommitted_writer() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        p.store_mut().write_word(a, 5);

        begin(&mut p, 0);
        begin(&mut p, 1);
        assert!(write(&mut p, 0, a, 9).is_empty());
        let (value, victims) = read(&mut p, 1, a);
        assert_eq!(
            victims,
            vec![(ThreadId(0), AbortCause::ReadWrite)],
            "get-shared hits the writer's write set"
        );
        assert_eq!(value, 5, "requester reads committed state");
        // Engine dooms the victim.
        p.rollback(ThreadId(0));
        commit_ok(&mut p, 1);
        assert_eq!(p.store().read_word(a), 5, "victim's write never lands");
    }

    #[test]
    fn write_dooms_readers_and_writers_with_classification() {
        let cfg = MachineConfig::with_cores(3);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(1);

        begin(&mut p, 0); // will read a
        begin(&mut p, 1); // will write a
        begin(&mut p, 2); // requester
        let _ = read(&mut p, 0, a);
        let v = write(&mut p, 1, a, 1);
        assert_eq!(v, vec![(ThreadId(0), AbortCause::ReadWrite)]);
        p.rollback(ThreadId(0));
        let v = write(&mut p, 2, a, 2);
        assert_eq!(v, vec![(ThreadId(1), AbortCause::WriteWrite)]);
        p.rollback(ThreadId(1));
        commit_ok(&mut p, 2);
        assert_eq!(p.store().read_word(a), 2);
    }

    #[test]
    fn abort_detail_classifies_doomed_holders_as_lock_timeouts() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(1);

        begin(&mut p, 0);
        begin(&mut p, 1);
        assert!(write(&mut p, 0, a, 9).is_empty());
        let (_, victims) = read(&mut p, 1, a);
        assert_eq!(victims.len(), 1);
        let detail = p.last_abort_detail(ThreadId(0));
        assert_eq!(detail.cause, Some(ForensicCause::LockTimeout));
        assert_eq!(detail.line, Some(a.line().0));
        assert_eq!(detail.winner_ts, None, "2PL has no commit clock");
    }

    #[test]
    fn repeated_write_to_same_line_broadcasts_once() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(2);
        begin(&mut p, 0);
        begin(&mut p, 1);
        assert!(write(&mut p, 0, a, 1).is_empty());
        // Thread 1 reads a *different* line; no conflict.
        let b = p.store_mut().alloc_words(1);
        let (_, v) = read(&mut p, 1, b);
        assert!(v.is_empty());
        // Second write to the same line by 0: no new broadcast, no
        // victims even though 1 is active.
        assert!(write(&mut p, 0, a.add(1), 2).is_empty());
        commit_ok(&mut p, 0);
        commit_ok(&mut p, 1);
    }

    #[test]
    fn capacity_overflow_aborts() {
        let mut cfg = MachineConfig::with_cores(1);
        cfg.version_buffer_bytes = 2 * 64; // two lines
        let mut p = TwoPl::new(&cfg);
        let base = p.store_mut().alloc_lines(3).first_word();
        begin(&mut p, 0);
        assert!(write(&mut p, 0, Addr(base.0), 1).is_empty());
        assert!(write(&mut p, 0, Addr(base.0 + 8), 2).is_empty());
        match p.write(ThreadId(0), Addr(base.0 + 16), 3, 0) {
            WriteOutcome::Abort { cause, .. } => assert_eq!(cause, AbortCause::Capacity),
            other => panic!("expected capacity abort, got {other:?}"),
        }
        // Nothing landed in memory.
        assert_eq!(p.store().read_word(Addr(base.0)), 0);
    }

    #[test]
    fn commit_token_serializes_commits() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        let b = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        begin(&mut p, 1);
        write(&mut p, 0, a, 1);
        write(&mut p, 1, b, 2);
        let c0 = match p.commit(ThreadId(0), 100) {
            CommitOutcome::Committed { cycles, .. } => cycles,
            other => panic!("{other:?}"),
        };
        // Committing at the same instant must wait for the token.
        let c1 = match p.commit(ThreadId(1), 100) {
            CommitOutcome::Committed { cycles, .. } => cycles,
            other => panic!("{other:?}"),
        };
        assert!(c1 > c0, "second committer waits: {c1} <= {c0}");
    }

    #[test]
    fn reads_after_commit_see_new_values() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        write(&mut p, 0, a, 7);
        commit_ok(&mut p, 0);
        begin(&mut p, 1);
        let (v, _) = read(&mut p, 1, a);
        assert_eq!(v, 7);
        commit_ok(&mut p, 1);
    }

    #[test]
    fn read_own_write_and_partial_line_merge() {
        let cfg = MachineConfig::with_cores(1);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(2);
        p.store_mut().write_word(a.add(1), 44);
        begin(&mut p, 0);
        write(&mut p, 0, a, 11);
        assert_eq!(read(&mut p, 0, a).0, 11);
        assert_eq!(read(&mut p, 0, a.add(1)).0, 44);
        commit_ok(&mut p, 0);
        assert_eq!(p.store().read_word(a), 11);
        assert_eq!(p.store().read_word(a.add(1)), 44);
    }

    #[test]
    fn rollback_is_idempotent_and_clears_sets() {
        let cfg = MachineConfig::with_cores(2);
        let mut p = TwoPl::new(&cfg);
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        write(&mut p, 0, a, 1);
        assert!(p.rollback(ThreadId(0)) > 0);
        assert_eq!(p.rollback(ThreadId(0)), 0);
        // After rollback, a new writer sees no conflict.
        begin(&mut p, 1);
        assert!(write(&mut p, 1, a, 2).is_empty());
        commit_ok(&mut p, 1);
    }
}

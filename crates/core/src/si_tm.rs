//! SI-TM: the snapshot-isolation transactional memory protocol
//! (section 4 of the paper).
//!
//! Four properties distinguish SI-TM from conventional HTM:
//!
//! 1. transactions commit *in the presence of read-write conflicts* —
//!    only write-write conflicts abort;
//! 2. read-only transactions are guaranteed to commit (and do so with
//!    zero overhead: no end timestamp, no checks);
//! 3. conflict detection is lazy and timestamp-based: a committing
//!    transaction compares its write set against the state of main
//!    memory (the version lists) instead of broadcasting to other cores;
//! 4. transactions are unbounded: uncommitted lines evicted from the
//!    private caches spill into the multiversioned memory as *transient*
//!    versions instead of aborting.
//!
//! The transactional actions map onto the paper's section 4.2:
//!
//! * `TM_BEGIN` — obtain a unique start timestamp (atomic increment);
//! * `TM_READ` — serve the most current version older than the start
//!   timestamp from the MVM; no read-set tracking, readers are invisible;
//! * `TM_WRITE` — insert the address into the write set and buffer the
//!   data in the L1; spill to a transient MVM version on overflow;
//! * `TM_COMMIT` — obtain an end timestamp (`current + delta` with the
//!   counter advancing by one, so commits are isolated from concurrent
//!   starters), then for each written line check that no newer version
//!   exists; install new versions on success, remove them and roll back
//!   on a write-write conflict.

use sitm_mvm::{Addr, GlobalClock, LineAddr, MvmConfig, MvmStore, ThreadId, Timestamp, Word};
use sitm_obs::ForensicCause;
use sitm_sim::{
    AbortCause, AbortDetail, BeginOutcome, CommitOutcome, Cycles, MachineConfig, ReadOutcome,
    TmProtocol, Victims, WriteOutcome,
};

use crate::base::{LineSet, ProtocolBase, TouchedLines, WriteBuffer};

/// Tuning knobs of the SI-TM model.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiTmConfig {
    /// Perform write-write conflict detection at word rather than line
    /// granularity, eliminating false-sharing and silent-store conflicts
    /// (the section 4.2 optimization). The paper's evaluation keeps this
    /// *off* so all three systems compare at line granularity.
    pub word_granularity: bool,
    /// Configuration of the multiversioned memory (version cap, overflow
    /// policy, coalescing).
    pub mvm: MvmConfig,
    /// Usable timestamp space (for overflow failure injection); `None`
    /// uses the full 64-bit space.
    pub timestamp_limit: Option<u64>,
}

/// Per-transaction state.
#[derive(Debug, Default)]
struct SiTx {
    start: Timestamp,
    writes: WriteBuffer,
    /// Lines fetched transactionally into the private caches; flash
    /// invalidated at transaction end so later transactions refetch
    /// current state.
    touched: TouchedLines,
    /// Lines spilled to the MVM as transient versions.
    spilled: LineSet,
    /// Promoted reads: validated like writes at commit, but no version
    /// is created (the section 5.1 write-skew remedy).
    promoted: LineSet,
}

/// The SI-TM protocol model. See the module docs above for semantics.
#[derive(Debug)]
pub struct SiTm {
    base: ProtocolBase,
    clock: GlobalClock,
    cfg: SiTmConfig,
    txs: Vec<Option<SiTx>>,
    /// L1-sized threshold above which written lines spill as transients
    /// (cost modeling only; never an abort).
    spill_threshold: usize,
    /// Per-thread timestamp of the version served by the most recent
    /// successful read (`None` for read-own-write), reported to the
    /// history recorder.
    last_reads: Vec<Option<u64>>,
    /// Per-thread end timestamp of the most recent successful commit
    /// (`None` when nothing was installed), reported to the history
    /// recorder.
    last_commits: Vec<Option<u64>>,
    /// Per-thread detail of the most recent abort site, reported to the
    /// engine's forensics recorder. Overwritten at every abort; survives
    /// rollback (victim details are read at the victim's next step).
    last_aborts: Vec<AbortDetail>,
}

impl SiTm {
    /// Builds an SI-TM model for machine `cfg` with default protocol
    /// configuration.
    pub fn new(machine: &MachineConfig) -> Self {
        Self::with_config(machine, SiTmConfig::default())
    }

    /// Builds an SI-TM model with explicit protocol configuration.
    pub fn with_config(machine: &MachineConfig, cfg: SiTmConfig) -> Self {
        let clock = match cfg.timestamp_limit {
            // Scale the reservation window down with tiny (failure
            // injection) timestamp spaces so commits remain possible.
            Some(limit) => GlobalClock::with_limit(
                machine.cores,
                limit,
                sitm_mvm::DEFAULT_DELTA.min((limit / 4).max(1)),
            ),
            None => GlobalClock::new(machine.cores),
        };
        SiTm {
            base: ProtocolBase::new(MvmStore::with_config(cfg.mvm), machine),
            clock,
            cfg,
            txs: (0..machine.cores).map(|_| None).collect(),
            spill_threshold: machine.version_buffer_lines(),
            last_reads: vec![None; machine.cores],
            last_commits: vec![None; machine.cores],
            last_aborts: vec![AbortDetail::default(); machine.cores],
        }
    }

    /// The global clock (diagnostics: overflow count, current value).
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    fn tx(&mut self, tid: ThreadId) -> &mut SiTx {
        self.txs[tid.0]
            .as_mut()
            .expect("operation outside a transaction")
    }

    /// Ends `tid`'s transaction: unregister its snapshot, flash
    /// invalidate its transactionally marked lines, drop transients.
    fn teardown(&mut self, tid: ThreadId) -> Option<SiTx> {
        let tx = self.txs[tid.0].take()?;
        self.base.store.unregister_transaction(tid);
        for &line in &tx.spilled {
            self.base.store.take_transient(tid, line);
        }
        self.base
            .mem
            .invalidate_own(tid.0, tx.touched.iter().copied());
        Some(tx)
    }

    /// Abort-all after a clock overflow: doom every other in-flight
    /// transaction and reset the clock.
    fn overflow_reset(&mut self, tid: ThreadId) -> Victims {
        let victims: Victims = self
            .txs
            .iter()
            .enumerate()
            .filter(|(i, tx)| *i != tid.0 && tx.is_some())
            .map(|(i, _)| (ThreadId(i), AbortCause::ClockOverflow))
            .collect();
        for &(victim, _) in &victims {
            self.last_aborts[victim.0] = AbortDetail {
                cause: Some(ForensicCause::Explicit),
                ..AbortDetail::default()
            };
        }
        // The interrupt handler aborts every active transaction, clears
        // their registrations and transient versions, re-bases committed
        // state to the epoch, and resets the clock.
        for &(victim, _) in &victims {
            let tx = self.txs[victim.0].take().expect("victim has a transaction");
            self.base.store.unregister_transaction(victim);
            for &line in &tx.spilled {
                self.base.store.take_transient(victim, line);
            }
            self.base
                .mem
                .invalidate_own(victim.0, tx.touched.iter().copied());
            // Re-arm the slot so the engine's rollback call (which dooms
            // the victim later) still finds state to discard idempotently.
            self.txs[victim.0] = Some(SiTx {
                start: Timestamp::ZERO,
                ..SiTx::default()
            });
        }
        if let Some(tx) = self.txs[tid.0].take() {
            self.base.store.unregister_transaction(tid);
            for &line in &tx.spilled {
                self.base.store.take_transient(tid, line);
            }
        }
        self.base.store.flatten_all();
        self.clock.reset_after_overflow();
        victims
    }
}

impl TmProtocol for SiTm {
    fn name(&self) -> &'static str {
        "SI-TM"
    }

    fn begin(&mut self, tid: ThreadId, _now: Cycles) -> BeginOutcome {
        debug_assert!(self.txs[tid.0].is_none(), "nested begin");
        match self.clock.begin() {
            Ok(start) => {
                self.base.store.register_transaction(tid, start);
                self.txs[tid.0] = Some(SiTx {
                    start,
                    ..SiTx::default()
                });
                BeginOutcome::Started {
                    cycles: self.base.begin_cost,
                    victims: vec![],
                }
            }
            Err(sitm_mvm::BeginError::Stall(_)) => BeginOutcome::Stall {
                cycles: self.base.begin_cost * 4,
            },
            Err(sitm_mvm::BeginError::Overflow(_)) => {
                // Interrupt: abort all active transactions, reset, retry.
                let victims = self.overflow_reset(tid);
                let start = self
                    .clock
                    .begin()
                    .expect("clock usable immediately after reset");
                self.base.store.register_transaction(tid, start);
                self.txs[tid.0] = Some(SiTx {
                    start,
                    ..SiTx::default()
                });
                BeginOutcome::Started {
                    cycles: self.base.begin_cost * 10,
                    victims,
                }
            }
        }
    }

    fn read(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> ReadOutcome {
        let line = addr.line();
        // Read-own-writes from the buffer first.
        if let Some(value) = self.tx(tid).writes.get(addr) {
            self.last_reads[tid.0] = None;
            let cycles = self.base.mem.l1_write(tid.0, line); // L1 hit cost
            return ReadOutcome::Ok {
                value,
                cycles,
                victims: vec![],
            };
        }
        let start = self.tx(tid).start;
        // Word-granular snapshot read: the read-own-writes check above
        // already returned `None` for this exact address, so no buffered
        // write can affect the word read and the full line image is
        // never needed.
        let value = match self.base.store.read_word_snapshot_ts(addr, start) {
            Some((value, ts)) => {
                self.last_reads[tid.0] = Some(ts.0);
                value
            }
            None => {
                // The snapshot's version was discarded (discard-oldest
                // policy): the reader aborts.
                self.last_aborts[tid.0] = AbortDetail {
                    cause: Some(ForensicCause::CapacityEviction),
                    line: Some(line.0),
                    winner_ts: self.base.store.newest_ts(line).map(|ts| ts.0),
                    snapshot_ts: Some(start.0),
                };
                let cycles = self.rollback(tid);
                return ReadOutcome::Abort {
                    cause: AbortCause::VersionOverflow,
                    cycles,
                    victims: vec![],
                };
            }
        };
        let cycles = self.base.mem.mvm_access(tid.0, line);
        self.tx(tid).touched.insert(line);
        ReadOutcome::Ok {
            value,
            cycles,
            victims: vec![],
        }
    }

    fn write(&mut self, tid: ThreadId, addr: Addr, value: Word, _now: Cycles) -> WriteOutcome {
        let line = addr.line();
        let spill_threshold = self.spill_threshold;
        let tx = self.tx(tid);
        tx.writes.insert(addr, value);
        tx.touched.insert(line);
        let mut cycles = self.base.mem.l1_write(tid.0, line);
        // Version-buffer overflow never aborts SI-TM: the line spills to
        // the MVM as a transient version owned by this thread.
        let needs_spill = self.txs[tid.0].as_ref().unwrap().writes.line_count() > spill_threshold
            && !self.txs[tid.0].as_ref().unwrap().spilled.contains(&line);
        if needs_spill {
            let tx = self.txs[tid.0].as_ref().unwrap();
            let start = tx.start;
            let base_data = self
                .base
                .store
                .read_snapshot(line, start)
                .map(|s| s.data)
                .unwrap_or(sitm_mvm::ZERO_LINE);
            let data = self.txs[tid.0]
                .as_ref()
                .unwrap()
                .writes
                .apply_to(line, base_data);
            self.base.store.put_transient(tid, line, data);
            self.txs[tid.0].as_mut().unwrap().spilled.insert(line);
            cycles += self.base.mem.writeback(tid.0, line);
        }
        WriteOutcome::Ok {
            cycles,
            victims: vec![],
        }
    }

    fn promote(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> WriteOutcome {
        let line = addr.line();
        let tx = self.tx(tid);
        tx.promoted.insert(line);
        WriteOutcome::Ok {
            cycles: 1,
            victims: vec![],
        }
    }

    fn commit(&mut self, tid: ThreadId, _now: Cycles) -> CommitOutcome {
        // Read-only transactions (no writes, no promotions) commit with
        // zero overhead: no end timestamp, no checks.
        {
            let tx = self.txs[tid.0]
                .as_ref()
                .expect("commit outside transaction");
            if tx.writes.is_empty() && tx.promoted.is_empty() {
                self.last_commits[tid.0] = None;
                self.teardown(tid);
                return CommitOutcome::Committed {
                    cycles: 0,
                    victims: vec![],
                };
            }
        }
        // Promotion-only transactions validate but install nothing.
        if self.txs[tid.0].as_ref().unwrap().writes.is_empty() {
            let tx = self.txs[tid.0].as_ref().unwrap();
            let start = tx.start;
            let promoted: Vec<LineAddr> = tx.promoted.iter().copied().collect();
            let mut cycles = 0;
            for &line in &promoted {
                cycles += self.base.per_line_validate_cost;
                if self.base.store.newer_than(line, start) {
                    self.last_aborts[tid.0] = AbortDetail {
                        cause: Some(ForensicCause::WriteWriteFcw),
                        line: Some(line.0),
                        winner_ts: self.base.store.newest_ts(line).map(|ts| ts.0),
                        snapshot_ts: Some(start.0),
                    };
                    let rollback = self.rollback(tid);
                    return CommitOutcome::Abort {
                        cause: AbortCause::WriteWrite,
                        cycles: cycles + rollback,
                        victims: vec![],
                    };
                }
            }
            self.last_commits[tid.0] = None;
            self.teardown(tid);
            return CommitOutcome::Committed {
                cycles,
                victims: vec![],
            };
        }

        let end = match self.clock.reserve_end() {
            Ok(end) => end,
            Err(_) => {
                // Clock overflow during commit: abort everything.
                self.last_aborts[tid.0] = AbortDetail {
                    cause: Some(ForensicCause::Explicit),
                    ..AbortDetail::default()
                };
                let mut victims = self.overflow_reset(tid);
                let cycles = self.rollback(tid);
                victims.retain(|(v, _)| *v != tid);
                return CommitOutcome::Abort {
                    cause: AbortCause::ClockOverflow,
                    cycles,
                    victims,
                };
            }
        };

        let tx = self.txs[tid.0].as_ref().unwrap();
        let start = tx.start;
        let lines: Vec<LineAddr> = tx.writes.lines().collect();
        // Promoted lines participate in validation (but not install).
        let mut validate_lines = lines.clone();
        validate_lines.extend(
            tx.promoted
                .iter()
                .copied()
                .filter(|l| !tx.writes.touches_line(*l)),
        );
        let mut cycles: Cycles = 0;

        // Timestamp-based write-write validation: a single comparison
        // against the version list per written (or promoted) line.
        let mut conflict: Option<LineAddr> = None;
        for &line in &validate_lines {
            cycles += self.base.per_line_validate_cost;
            if self.base.store.newer_than(line, start) {
                if self.cfg.word_granularity {
                    // Compare at word granularity to dismiss false
                    // sharing and silent stores: the conflict is real
                    // only if the newer committed version changed a word
                    // this transaction wrote to a different value.
                    let newest = self.base.store.read_line(line);
                    let snap = self
                        .base
                        .store
                        .read_snapshot(line, start)
                        .map(|s| s.data)
                        .unwrap_or(sitm_mvm::ZERO_LINE);
                    let tx = self.txs[tid.0].as_ref().unwrap();
                    let real = tx.writes.words_in(line).any(|(a, v)| {
                        newest[a.offset()] != snap[a.offset()] && newest[a.offset()] != v
                    });
                    if real {
                        conflict = Some(line);
                        break;
                    }
                } else {
                    conflict = Some(line);
                    break;
                }
            }
        }

        if let Some(line) = conflict {
            self.last_aborts[tid.0] = AbortDetail {
                cause: Some(ForensicCause::WriteWriteFcw),
                line: Some(line.0),
                winner_ts: self.base.store.newest_ts(line).map(|ts| ts.0),
                snapshot_ts: Some(start.0),
            };
            let rollback = self.rollback(tid);
            self.clock.finish_commit(end);
            return CommitOutcome::Abort {
                cause: AbortCause::WriteWrite,
                cycles: cycles + rollback,
                victims: vec![],
            };
        }

        // The transaction is done reading: release its snapshot before
        // installing so its own start timestamp does not inhibit
        // coalescing (figure 4: TX1's start at TS 2 does not keep the
        // TS-1 version alive through its own commit at TS 3).
        self.base.store.unregister_transaction(tid);
        // Install new versions. A version overflow mid-install removes
        // the versions already created and aborts.
        let mut installed: Vec<LineAddr> = Vec::with_capacity(lines.len());
        let mut overflow: Option<LineAddr> = None;
        for &line in &lines {
            // Merge onto the newest committed image. Under line
            // granularity validation guarantees it equals the snapshot;
            // under word granularity a newer version touching disjoint
            // words may exist, and its words must be preserved.
            let newest = self.base.store.read_line(line);
            let data = self.txs[tid.0]
                .as_ref()
                .unwrap()
                .writes
                .apply_to(line, newest);
            cycles += self.base.mem.writeback(tid.0, line);
            match self.base.store.install(line, end, data) {
                Ok(()) => installed.push(line),
                Err(_) => {
                    overflow = Some(line);
                    break;
                }
            }
        }
        if let Some(line) = overflow {
            self.last_aborts[tid.0] = AbortDetail {
                cause: Some(ForensicCause::CapacityEviction),
                line: Some(line.0),
                winner_ts: self.base.store.newest_ts(line).map(|ts| ts.0),
                snapshot_ts: Some(start.0),
            };
            for line in installed {
                self.base.store.remove_installed(line, end);
            }
            let rollback = self.rollback(tid);
            self.clock.finish_commit(end);
            return CommitOutcome::Abort {
                cause: AbortCause::VersionOverflow,
                cycles: cycles + rollback,
                victims: vec![],
            };
        }

        self.last_commits[tid.0] = Some(end.0);
        self.teardown(tid);
        self.clock.finish_commit(end);
        CommitOutcome::Committed {
            cycles,
            victims: vec![],
        }
    }

    fn rollback(&mut self, tid: ThreadId) -> Cycles {
        match self.teardown(tid) {
            Some(tx) => self.base.rollback_cost + tx.writes.line_count() as Cycles,
            None => 0,
        }
    }

    fn store(&self) -> &MvmStore {
        &self.base.store
    }

    fn store_mut(&mut self) -> &mut MvmStore {
        &mut self.base.store
    }

    fn begin_ts(&self, tid: ThreadId) -> Option<u64> {
        self.txs[tid.0].as_ref().map(|tx| tx.start.0)
    }

    fn last_commit_ts(&self, tid: ThreadId) -> Option<u64> {
        self.last_commits[tid.0]
    }

    fn last_read_version(&self, tid: ThreadId) -> Option<u64> {
        self.last_reads[tid.0]
    }

    fn epoch(&self) -> u64 {
        self.clock.overflows()
    }

    fn last_abort_detail(&self, tid: ThreadId) -> AbortDetail {
        self.last_aborts[tid.0]
    }
}

impl sitm_obs::Observable for SiTm {
    fn export_metrics(&self, reg: &mut sitm_obs::MetricsRegistry) {
        sitm_obs::Observable::export_metrics(&self.base.store, reg);
        reg.count("si_tm.clock.overflows", self.clock.overflows());
        reg.count("si_tm.clock.now", self.clock.now().0);
        reg.count(
            "si_tm.clock.pending_commits",
            self.clock.pending_commits() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_mvm::OverflowPolicy;

    fn machine(cores: usize) -> MachineConfig {
        MachineConfig::with_cores(cores)
    }

    fn begin(p: &mut SiTm, t: usize) {
        match p.begin(ThreadId(t), 0) {
            BeginOutcome::Started { .. } => {}
            other => panic!("begin failed: {other:?}"),
        }
    }

    fn read(p: &mut SiTm, t: usize, a: Addr) -> Word {
        match p.read(ThreadId(t), a, 0) {
            ReadOutcome::Ok { value, .. } => value,
            other => panic!("read aborted: {other:?}"),
        }
    }

    fn write(p: &mut SiTm, t: usize, a: Addr, v: Word) {
        match p.write(ThreadId(t), a, v, 0) {
            WriteOutcome::Ok { .. } => {}
            other => panic!("write aborted: {other:?}"),
        }
    }

    fn commit_ok(p: &mut SiTm, t: usize) {
        match p.commit(ThreadId(t), 0) {
            CommitOutcome::Committed { .. } => {}
            other => panic!("commit failed: {other:?}"),
        }
    }

    fn commit_err(p: &mut SiTm, t: usize) -> AbortCause {
        match p.commit(ThreadId(t), 0) {
            CommitOutcome::Abort { cause, .. } => cause,
            other => panic!("commit unexpectedly succeeded: {other:?}"),
        }
    }

    #[test]
    fn read_write_conflicts_do_not_abort() {
        let mut p = SiTm::new(&machine(2));
        let a = p.store_mut().alloc_words(1);
        p.store_mut().write_word(a, 1);

        begin(&mut p, 0); // reader
        begin(&mut p, 1); // writer
        assert_eq!(read(&mut p, 0, a), 1);
        write(&mut p, 1, a, 2);
        commit_ok(&mut p, 1); // writer commits despite the overlap
                              // The reader still sees its snapshot and commits read-only.
        assert_eq!(read(&mut p, 0, a), 1);
        commit_ok(&mut p, 0);
        assert_eq!(p.store().read_word(a), 2);
    }

    #[test]
    fn write_write_conflict_aborts_second_committer() {
        let mut p = SiTm::new(&machine(2));
        let a = p.store_mut().alloc_words(1);

        begin(&mut p, 0);
        begin(&mut p, 1);
        write(&mut p, 0, a, 10);
        write(&mut p, 1, a, 20);
        commit_ok(&mut p, 0);
        assert_eq!(commit_err(&mut p, 1), AbortCause::WriteWrite);
        assert_eq!(p.store().read_word(a), 10, "loser's write discarded");
    }

    #[test]
    fn non_overlapping_writers_both_commit() {
        let mut p = SiTm::new(&machine(2));
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        write(&mut p, 0, a, 1);
        commit_ok(&mut p, 0);
        // Second transaction starts after the first committed.
        begin(&mut p, 1);
        write(&mut p, 1, a, 2);
        commit_ok(&mut p, 1);
        assert_eq!(p.store().read_word(a), 2);
    }

    #[test]
    fn snapshot_reads_are_stable_across_concurrent_commits() {
        let mut p = SiTm::new(&machine(3));
        let a = p.store_mut().alloc_words(1);
        p.store_mut().write_word(a, 100);

        begin(&mut p, 0);
        assert_eq!(read(&mut p, 0, a), 100);
        // Two successive writers commit new values.
        for (t, v) in [(1, 200), (2, 300)] {
            begin(&mut p, t);
            write(&mut p, t, a, v);
            commit_ok(&mut p, t);
        }
        // The old snapshot still reads 100.
        assert_eq!(read(&mut p, 0, a), 100);
        commit_ok(&mut p, 0);
        assert_eq!(p.store().read_word(a), 300);
    }

    #[test]
    fn read_own_write() {
        let mut p = SiTm::new(&machine(1));
        let a = p.store_mut().alloc_words(2);
        p.store_mut().write_word(a, 5);
        begin(&mut p, 0);
        write(&mut p, 0, a, 6);
        assert_eq!(read(&mut p, 0, a), 6, "reads own buffered write");
        // Partial-line merge: other word of the line is the snapshot's.
        assert_eq!(read(&mut p, 0, a.add(1)), 0);
        commit_ok(&mut p, 0);
        assert_eq!(p.store().read_word(a), 6);
    }

    #[test]
    fn large_transactions_spill_and_still_commit() {
        let mut m = machine(1);
        m.version_buffer_bytes = 4 * 64; // 4-line buffer
        let mut p = SiTm::new(&m);
        let base = p.store_mut().alloc_lines(16).first_word();
        begin(&mut p, 0);
        for i in 0..16u64 {
            write(&mut p, 0, Addr(base.0 + i * 8), i);
        }
        commit_ok(&mut p, 0);
        for i in 0..16u64 {
            assert_eq!(p.store().read_word(Addr(base.0 + i * 8)), i);
        }
    }

    #[test]
    fn aborted_spills_leave_no_trace() {
        let mut m = machine(2);
        m.version_buffer_bytes = 64; // spill after the first line
        let mut p = SiTm::new(&m);
        let base = p.store_mut().alloc_lines(4).first_word();
        let contended = p.store_mut().alloc_words(1);

        begin(&mut p, 0);
        begin(&mut p, 1);
        for i in 0..4u64 {
            write(&mut p, 0, Addr(base.0 + i * 8), 7);
        }
        write(&mut p, 0, contended, 7);
        // Thread 1 wins the race on the contended line.
        write(&mut p, 1, contended, 9);
        commit_ok(&mut p, 1);
        assert_eq!(commit_err(&mut p, 0), AbortCause::WriteWrite);
        for i in 0..4u64 {
            assert_eq!(p.store().read_word(Addr(base.0 + i * 8)), 0);
        }
        assert_eq!(p.store().read_word(contended), 9);
    }

    #[test]
    fn version_cap_overflow_aborts_writer() {
        let mut cfg = SiTmConfig::default();
        cfg.mvm.version_cap = 2;
        cfg.mvm.overflow_policy = OverflowPolicy::AbortWriter;
        let mut p = SiTm::with_config(&machine(8), cfg);
        let a = p.store_mut().alloc_words(1);

        // An ancient reader pins the original version, and a fresh
        // reader begins after every commit so consecutive versions can
        // neither coalesce nor be garbage collected.
        begin(&mut p, 7);
        let _ = read(&mut p, 7, a);

        let mut aborted = false;
        for t in 0..4usize {
            begin(&mut p, t);
            write(&mut p, t, a, t as Word);
            match p.commit(ThreadId(t), 0) {
                CommitOutcome::Committed { .. } => {}
                CommitOutcome::Abort { cause, .. } => {
                    assert_eq!(cause, AbortCause::VersionOverflow);
                    aborted = true;
                    break;
                }
            }
            // Pin the just-committed version with a long-lived reader.
            begin(&mut p, 4 + t % 3);
            let _ = read(&mut p, 4 + t % 3, a);
        }
        assert!(aborted, "cap of 2 with pinned snapshots must overflow");
    }

    #[test]
    fn word_granularity_dismisses_false_sharing() {
        let cfg = SiTmConfig {
            word_granularity: true,
            ..Default::default()
        };
        let mut p = SiTm::with_config(&machine(2), cfg);
        let a = p.store_mut().alloc_words(8); // one line, 8 words

        begin(&mut p, 0);
        begin(&mut p, 1);
        write(&mut p, 0, a, 1); // word 0
        write(&mut p, 1, a.add(1), 2); // word 1, same line
        commit_ok(&mut p, 0);
        // Line-granularity would abort; word granularity sees disjoint
        // words and commits.
        commit_ok(&mut p, 1);
        assert_eq!(p.store().read_word(a), 1);
        assert_eq!(p.store().read_word(a.add(1)), 2);
    }

    #[test]
    fn line_granularity_flags_false_sharing() {
        let mut p = SiTm::new(&machine(2));
        let a = p.store_mut().alloc_words(8);
        begin(&mut p, 0);
        begin(&mut p, 1);
        write(&mut p, 0, a, 1);
        write(&mut p, 1, a.add(1), 2);
        commit_ok(&mut p, 0);
        assert_eq!(commit_err(&mut p, 1), AbortCause::WriteWrite);
    }

    #[test]
    fn clock_overflow_aborts_all_and_recovers() {
        let cfg = SiTmConfig {
            timestamp_limit: Some(8),
            ..SiTmConfig::default()
        };
        let mut p = SiTm::with_config(&machine(3), cfg);
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 1);
        write(&mut p, 1, a, 1);
        // Burn through the tiny timestamp space.
        let mut overflow_victims = None;
        for _ in 0..16 {
            match p.begin(ThreadId(0), 0) {
                BeginOutcome::Started { victims, .. } => {
                    if !victims.is_empty() {
                        overflow_victims = Some(victims);
                        break;
                    }
                    commit_ok(&mut p, 0); // read-only commit frees the slot
                }
                BeginOutcome::Stall { .. } => {}
            }
        }
        let victims = overflow_victims.expect("overflow must occur");
        assert_eq!(victims, vec![(ThreadId(1), AbortCause::ClockOverflow)]);
        assert_eq!(p.clock().overflows(), 1);
        // Engine would roll thread 1 back.
        p.rollback(ThreadId(1));
        // The machine keeps working afterwards.
        commit_ok(&mut p, 0);
        begin(&mut p, 2);
        write(&mut p, 2, a, 3);
        commit_ok(&mut p, 2);
        assert_eq!(p.store().read_word(a), 3);
    }

    #[test]
    fn rollback_is_idempotent() {
        let mut p = SiTm::new(&machine(1));
        assert_eq!(p.rollback(ThreadId(0)), 0);
        begin(&mut p, 0);
        let a = Addr(0);
        write(&mut p, 0, a, 1);
        assert!(p.rollback(ThreadId(0)) > 0);
        assert_eq!(p.rollback(ThreadId(0)), 0);
    }

    #[test]
    fn abort_detail_names_the_conflicting_line_and_winner() {
        let mut p = SiTm::new(&machine(2));
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        begin(&mut p, 1);
        write(&mut p, 0, a, 10);
        write(&mut p, 1, a, 20);
        commit_ok(&mut p, 0);
        let winner_ts = p.last_commit_ts(ThreadId(0)).expect("writer committed");
        let loser_start = p.begin_ts(ThreadId(1)).expect("loser in flight");
        assert_eq!(commit_err(&mut p, 1), AbortCause::WriteWrite);
        let d = p.last_abort_detail(ThreadId(1));
        assert_eq!(d.cause, Some(ForensicCause::WriteWriteFcw));
        assert_eq!(d.line, Some(a.line().0));
        assert_eq!(d.winner_ts, Some(winner_ts));
        assert_eq!(d.snapshot_ts, Some(loser_start));
        assert!(
            d.winner_ts > d.snapshot_ts,
            "winner committed after the loser began"
        );
    }

    #[test]
    fn read_only_commit_is_free() {
        let mut p = SiTm::new(&machine(1));
        let a = p.store_mut().alloc_words(1);
        begin(&mut p, 0);
        let _ = read(&mut p, 0, a);
        match p.commit(ThreadId(0), 0) {
            CommitOutcome::Committed { cycles, .. } => assert_eq!(cycles, 0),
            other => panic!("{other:?}"),
        }
    }
}

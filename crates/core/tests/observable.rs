//! All four protocol models implement `sitm_obs::Observable` and export
//! a namespaced metric set over the shared MVM store counters.

use sitm_core::{SiTm, Sontm, SsiTm, TwoPl};
use sitm_mvm::ThreadId;
use sitm_obs::{MetricsRegistry, Observable};
use sitm_sim::{BeginOutcome, CommitOutcome, MachineConfig, TmProtocol, WriteOutcome};

/// Runs one trivial committed writer transaction through `p` and
/// returns the exported registry.
fn drive_and_export<P: TmProtocol + Observable>(p: &mut P) -> MetricsRegistry {
    let a = p.store_mut().alloc_words(1);
    let t = ThreadId(0);
    assert!(matches!(p.begin(t, 0), BeginOutcome::Started { .. }));
    assert!(matches!(p.write(t, a, 7, 0), WriteOutcome::Ok { .. }));
    assert!(matches!(p.commit(t, 0), CommitOutcome::Committed { .. }));
    let mut reg = MetricsRegistry::new();
    p.export_metrics(&mut reg);
    reg
}

#[test]
fn every_protocol_exports_store_metrics() {
    let machine = MachineConfig::with_cores(2);
    let regs = [
        drive_and_export(&mut SiTm::new(&machine)),
        drive_and_export(&mut SsiTm::new(&machine)),
        drive_and_export(&mut TwoPl::new(&machine)),
        drive_and_export(&mut Sontm::new(&machine)),
    ];
    for reg in &regs {
        assert!(!reg.is_empty());
        assert_eq!(reg.counter("mvm.lines"), 1);
    }
    // The multiversioned protocols commit through versioned installs;
    // the single-version baselines overwrite in place.
    for reg in &regs[..2] {
        assert_eq!(
            reg.counter("mvm.installs.created") + reg.counter("mvm.installs.coalesced"),
            1
        );
    }
}

#[test]
fn protocol_specific_namespaces_are_present() {
    let machine = MachineConfig::with_cores(2);
    let mut reg = MetricsRegistry::new();
    SiTm::new(&machine).export_metrics(&mut reg);
    assert_eq!(reg.counter("si_tm.clock.overflows"), 0);

    let mut reg = MetricsRegistry::new();
    SsiTm::new(&machine).export_metrics(&mut reg);
    assert_eq!(reg.counter("ssi_tm.committed_window.retained"), 0);

    let mut reg = MetricsRegistry::new();
    TwoPl::new(&machine).export_metrics(&mut reg);
    assert!(reg.counter("two_pl.capacity_lines") > 0);

    let mut reg = MetricsRegistry::new();
    Sontm::new(&machine).export_metrics(&mut reg);
    assert_eq!(reg.counter("sontm.write_numbers.lines"), 0);
}

//! # sitm-workloads — the paper's benchmarks as transaction programs
//!
//! The ten benchmarks of the SI-TM evaluation (section 6.2): the three
//! RSTM microbenchmarks — [`mod@array`], [`list`], [`rbtree`] — and seven
//! STAMP-like application kernels under [`stamp`]. Each is a
//! [`sitm_sim::Workload`]: it lays its shared data structures out in
//! multiversioned memory and manufactures per-thread streams of
//! [`sitm_sim::TxProgram`]s for the discrete-event engine.
//!
//! Data-structure algorithms are written as ordinary Rust against the
//! [`txm`] transaction machine, which adapts straight-line logic into
//! the resumable op-level programs the engine interleaves.
//!
//! Use [`registry`] to enumerate the benchmark suite as the figure
//! harnesses do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod list;
pub mod rbtree;
pub mod registry;
pub mod stamp;
pub mod txm;

pub use array::{ArrayParams, ArrayWorkload};
pub use list::{ListOp, ListOpKind, ListParams, ListWorkload};
pub use rbtree::{check_tree, RbOp, RbOpKind, RbTree, RbTreeParams, RbTreeWorkload};
pub use registry::{all_workloads, microbenchmarks, stamp_kernels, Scale};
pub use txm::{LogicTx, NeedRead, TxLogic, TxMemory};

//! The Red-Black Tree microbenchmark (section 6.2).
//!
//! A complete red-black tree living in simulated memory, with CLRS-style
//! insert and delete including recoloring and rotations. A single update
//! can touch many nodes through rebalancing, so write sets are larger
//! and more scattered than the list's — the paper reports only ~2x
//! improvement for SI-TM here: lookups (50% of the mix) never conflict,
//! but insert/delete rebalancing produces genuine write-write conflicts
//! that snapshot isolation cannot forgive.
//!
//! Mix: 50% lookup / 25% insert / 25% delete over a tree initialized
//! with 100 elements (the paper's configuration).
//!
//! Node layout (one node per cache line): word 0 = key, word 1 = value,
//! word 2 = color (0 black, 1 red), word 3 = left, word 4 = right,
//! word 5 = parent. Child/parent fields hold line numbers or [`NIL`].

use sitm_mvm::{Addr, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Null node marker.
pub const NIL: Word = u64::MAX;

const BLACK: Word = 0;
const RED: Word = 1;

const F_KEY: u64 = 0;
const F_VAL: u64 = 1;
const F_COLOR: u64 = 2;
const F_LEFT: u64 = 3;
const F_RIGHT: u64 = 4;
const F_PARENT: u64 = 5;

fn field(node: Word, f: u64) -> Addr {
    debug_assert_ne!(node, NIL, "field access on NIL");
    Addr(node * WORDS_PER_LINE as u64 + f)
}

/// Red-black tree operations over a [`TxMemory`].
///
/// The tree is identified by the address of its root pointer; all node
/// accesses are transactional reads/writes, so the same code runs under
/// every protocol.
#[derive(Debug, Clone, Copy)]
pub struct RbTree {
    /// Address of the word holding the root node's line number (or
    /// [`NIL`]).
    pub root_ptr: Addr,
}

impl RbTree {
    fn root(&self, m: &mut TxMemory) -> Result<Word, NeedRead> {
        m.read(self.root_ptr)
    }

    fn get(&self, m: &mut TxMemory, n: Word, f: u64) -> Result<Word, NeedRead> {
        m.read(field(n, f))
    }

    fn set(&self, m: &mut TxMemory, n: Word, f: u64, v: Word) {
        m.write(field(n, f), v);
    }

    fn is_red(&self, m: &mut TxMemory, n: Word) -> Result<bool, NeedRead> {
        if n == NIL {
            return Ok(false);
        }
        Ok(self.get(m, n, F_COLOR)? == RED)
    }

    /// Finds the node with `key`, if present.
    pub fn lookup(&self, m: &mut TxMemory, key: Word) -> Result<Option<Word>, NeedRead> {
        let mut cur = self.root(m)?;
        while cur != NIL {
            let k = self.get(m, cur, F_KEY)?;
            cur = match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Ok(Some(cur)),
                std::cmp::Ordering::Less => self.get(m, cur, F_LEFT)?,
                std::cmp::Ordering::Greater => self.get(m, cur, F_RIGHT)?,
            };
        }
        Ok(None)
    }

    fn rotate_left(&self, m: &mut TxMemory, x: Word) -> Result<(), NeedRead> {
        let y = self.get(m, x, F_RIGHT)?;
        let y_left = self.get(m, y, F_LEFT)?;
        self.set(m, x, F_RIGHT, y_left);
        if y_left != NIL {
            self.set(m, y_left, F_PARENT, x);
        }
        let xp = self.get(m, x, F_PARENT)?;
        self.set(m, y, F_PARENT, xp);
        if xp == NIL {
            m.write(self.root_ptr, y);
        } else if self.get(m, xp, F_LEFT)? == x {
            self.set(m, xp, F_LEFT, y);
        } else {
            self.set(m, xp, F_RIGHT, y);
        }
        self.set(m, y, F_LEFT, x);
        self.set(m, x, F_PARENT, y);
        Ok(())
    }

    fn rotate_right(&self, m: &mut TxMemory, x: Word) -> Result<(), NeedRead> {
        let y = self.get(m, x, F_LEFT)?;
        let y_right = self.get(m, y, F_RIGHT)?;
        self.set(m, x, F_LEFT, y_right);
        if y_right != NIL {
            self.set(m, y_right, F_PARENT, x);
        }
        let xp = self.get(m, x, F_PARENT)?;
        self.set(m, y, F_PARENT, xp);
        if xp == NIL {
            m.write(self.root_ptr, y);
        } else if self.get(m, xp, F_RIGHT)? == x {
            self.set(m, xp, F_RIGHT, y);
        } else {
            self.set(m, xp, F_LEFT, y);
        }
        self.set(m, y, F_RIGHT, x);
        self.set(m, x, F_PARENT, y);
        Ok(())
    }

    /// Inserts `key` using the preallocated `node`. Returns `false` (and
    /// leaves the tree untouched) if the key already exists.
    pub fn insert(
        &self,
        m: &mut TxMemory,
        key: Word,
        value: Word,
        node: Word,
    ) -> Result<bool, NeedRead> {
        // BST descend.
        let mut parent = NIL;
        let mut cur = self.root(m)?;
        while cur != NIL {
            let k = self.get(m, cur, F_KEY)?;
            parent = cur;
            cur = match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Ok(false),
                std::cmp::Ordering::Less => self.get(m, cur, F_LEFT)?,
                std::cmp::Ordering::Greater => self.get(m, cur, F_RIGHT)?,
            };
        }
        // Attach red node.
        self.set(m, node, F_KEY, key);
        self.set(m, node, F_VAL, value);
        self.set(m, node, F_COLOR, RED);
        self.set(m, node, F_LEFT, NIL);
        self.set(m, node, F_RIGHT, NIL);
        self.set(m, node, F_PARENT, parent);
        if parent == NIL {
            m.write(self.root_ptr, node);
        } else if key < self.get(m, parent, F_KEY)? {
            self.set(m, parent, F_LEFT, node);
        } else {
            self.set(m, parent, F_RIGHT, node);
        }
        self.insert_fixup(m, node)?;
        Ok(true)
    }

    fn insert_fixup(&self, m: &mut TxMemory, mut z: Word) -> Result<(), NeedRead> {
        loop {
            let zp = self.get(m, z, F_PARENT)?;
            if zp == NIL || !self.is_red(m, zp)? {
                break;
            }
            let zpp = self.get(m, zp, F_PARENT)?;
            if zpp == NIL {
                break;
            }
            if self.get(m, zpp, F_LEFT)? == zp {
                let uncle = self.get(m, zpp, F_RIGHT)?;
                if self.is_red(m, uncle)? {
                    self.set(m, zp, F_COLOR, BLACK);
                    self.set(m, uncle, F_COLOR, BLACK);
                    self.set(m, zpp, F_COLOR, RED);
                    z = zpp;
                } else {
                    if self.get(m, zp, F_RIGHT)? == z {
                        z = zp;
                        self.rotate_left(m, z)?;
                    }
                    let zp = self.get(m, z, F_PARENT)?;
                    let zpp = self.get(m, zp, F_PARENT)?;
                    self.set(m, zp, F_COLOR, BLACK);
                    self.set(m, zpp, F_COLOR, RED);
                    self.rotate_right(m, zpp)?;
                }
            } else {
                let uncle = self.get(m, zpp, F_LEFT)?;
                if self.is_red(m, uncle)? {
                    self.set(m, zp, F_COLOR, BLACK);
                    self.set(m, uncle, F_COLOR, BLACK);
                    self.set(m, zpp, F_COLOR, RED);
                    z = zpp;
                } else {
                    if self.get(m, zp, F_LEFT)? == z {
                        z = zp;
                        self.rotate_right(m, z)?;
                    }
                    let zp = self.get(m, z, F_PARENT)?;
                    let zpp = self.get(m, zp, F_PARENT)?;
                    self.set(m, zp, F_COLOR, BLACK);
                    self.set(m, zpp, F_COLOR, RED);
                    self.rotate_left(m, zpp)?;
                }
            }
        }
        let root = self.root(m)?;
        if self.is_red(m, root)? {
            self.set(m, root, F_COLOR, BLACK);
        }
        Ok(())
    }

    /// Replaces the subtree rooted at `u` with the one rooted at `v`
    /// (which may be NIL) in `u`'s parent.
    fn transplant(&self, m: &mut TxMemory, u: Word, v: Word) -> Result<(), NeedRead> {
        let up = self.get(m, u, F_PARENT)?;
        if up == NIL {
            m.write(self.root_ptr, v);
        } else if self.get(m, up, F_LEFT)? == u {
            self.set(m, up, F_LEFT, v);
        } else {
            self.set(m, up, F_RIGHT, v);
        }
        if v != NIL {
            self.set(m, v, F_PARENT, up);
        }
        Ok(())
    }

    fn minimum(&self, m: &mut TxMemory, mut n: Word) -> Result<Word, NeedRead> {
        loop {
            let l = self.get(m, n, F_LEFT)?;
            if l == NIL {
                return Ok(n);
            }
            n = l;
        }
    }

    /// Removes `key`. Returns `false` if absent.
    pub fn remove(&self, m: &mut TxMemory, key: Word) -> Result<bool, NeedRead> {
        let Some(z) = self.lookup(m, key)? else {
            return Ok(false);
        };
        let mut y = z;
        let mut y_was_black = !self.is_red(m, y)?;
        let x;
        let mut x_parent;
        let z_left = self.get(m, z, F_LEFT)?;
        let z_right = self.get(m, z, F_RIGHT)?;
        if z_left == NIL {
            x = z_right;
            x_parent = self.get(m, z, F_PARENT)?;
            self.transplant(m, z, z_right)?;
        } else if z_right == NIL {
            x = z_left;
            x_parent = self.get(m, z, F_PARENT)?;
            self.transplant(m, z, z_left)?;
        } else {
            y = self.minimum(m, z_right)?;
            y_was_black = !self.is_red(m, y)?;
            x = self.get(m, y, F_RIGHT)?;
            if self.get(m, y, F_PARENT)? == z {
                x_parent = y;
                if x != NIL {
                    self.set(m, x, F_PARENT, y);
                }
            } else {
                x_parent = self.get(m, y, F_PARENT)?;
                self.transplant(m, y, x)?;
                self.set(m, y, F_RIGHT, z_right);
                let yr = self.get(m, y, F_RIGHT)?;
                self.set(m, yr, F_PARENT, y);
            }
            self.transplant(m, z, y)?;
            self.set(m, y, F_LEFT, z_left);
            self.set(m, z_left, F_PARENT, y);
            let z_color = self.get(m, z, F_COLOR)?;
            self.set(m, y, F_COLOR, z_color);
        }
        if y_was_black {
            self.delete_fixup(m, x, x_parent)?;
        }
        let _ = &mut x_parent;
        Ok(true)
    }

    fn delete_fixup(
        &self,
        m: &mut TxMemory,
        mut x: Word,
        mut x_parent: Word,
    ) -> Result<(), NeedRead> {
        while x != self.root(m)? && !self.is_red(m, x)? {
            if x_parent == NIL {
                break;
            }
            if self.get(m, x_parent, F_LEFT)? == x {
                let mut w = self.get(m, x_parent, F_RIGHT)?;
                if self.is_red(m, w)? {
                    self.set(m, w, F_COLOR, BLACK);
                    self.set(m, x_parent, F_COLOR, RED);
                    self.rotate_left(m, x_parent)?;
                    w = self.get(m, x_parent, F_RIGHT)?;
                }
                let wl = self.get(m, w, F_LEFT)?;
                let wr = self.get(m, w, F_RIGHT)?;
                if !self.is_red(m, wl)? && !self.is_red(m, wr)? {
                    self.set(m, w, F_COLOR, RED);
                    x = x_parent;
                    x_parent = self.get(m, x, F_PARENT)?;
                } else {
                    if !self.is_red(m, wr)? {
                        if wl != NIL {
                            self.set(m, wl, F_COLOR, BLACK);
                        }
                        self.set(m, w, F_COLOR, RED);
                        self.rotate_right(m, w)?;
                        w = self.get(m, x_parent, F_RIGHT)?;
                    }
                    let pc = self.get(m, x_parent, F_COLOR)?;
                    self.set(m, w, F_COLOR, pc);
                    self.set(m, x_parent, F_COLOR, BLACK);
                    let wr = self.get(m, w, F_RIGHT)?;
                    if wr != NIL {
                        self.set(m, wr, F_COLOR, BLACK);
                    }
                    self.rotate_left(m, x_parent)?;
                    x = self.root(m)?;
                    x_parent = NIL;
                }
            } else {
                let mut w = self.get(m, x_parent, F_LEFT)?;
                if self.is_red(m, w)? {
                    self.set(m, w, F_COLOR, BLACK);
                    self.set(m, x_parent, F_COLOR, RED);
                    self.rotate_right(m, x_parent)?;
                    w = self.get(m, x_parent, F_LEFT)?;
                }
                let wl = self.get(m, w, F_LEFT)?;
                let wr = self.get(m, w, F_RIGHT)?;
                if !self.is_red(m, wl)? && !self.is_red(m, wr)? {
                    self.set(m, w, F_COLOR, RED);
                    x = x_parent;
                    x_parent = self.get(m, x, F_PARENT)?;
                } else {
                    if !self.is_red(m, wl)? {
                        if wr != NIL {
                            self.set(m, wr, F_COLOR, BLACK);
                        }
                        self.set(m, w, F_COLOR, RED);
                        self.rotate_left(m, w)?;
                        w = self.get(m, x_parent, F_LEFT)?;
                    }
                    let pc = self.get(m, x_parent, F_COLOR)?;
                    self.set(m, w, F_COLOR, pc);
                    self.set(m, x_parent, F_COLOR, BLACK);
                    let wl = self.get(m, w, F_LEFT)?;
                    if wl != NIL {
                        self.set(m, wl, F_COLOR, BLACK);
                    }
                    self.rotate_right(m, x_parent)?;
                    x = self.root(m)?;
                    x_parent = NIL;
                }
            }
        }
        if x != NIL {
            self.set(m, x, F_COLOR, BLACK);
        }
        Ok(())
    }
}

/// Verifies the committed tree non-transactionally: BST order, red rule
/// (no red node has a red child), and equal black height on every path.
/// Returns the sorted keys.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_tree(mem: &MvmStore, root_ptr: Addr) -> Result<Vec<Word>, String> {
    fn walk(
        mem: &MvmStore,
        n: Word,
        lo: Option<Word>,
        hi: Option<Word>,
        keys: &mut Vec<Word>,
        depth: usize,
    ) -> Result<usize, String> {
        if n == NIL {
            return Ok(1); // NIL counts as black
        }
        if depth > 128 {
            return Err("tree too deep (cycle?)".into());
        }
        let key = mem.read_word(field(n, F_KEY));
        if lo.is_some_and(|l| key <= l) || hi.is_some_and(|h| key >= h) {
            return Err(format!("BST order violated at key {key}"));
        }
        let color = mem.read_word(field(n, F_COLOR));
        let left = mem.read_word(field(n, F_LEFT));
        let right = mem.read_word(field(n, F_RIGHT));
        if color == RED {
            for c in [left, right] {
                if c != NIL && mem.read_word(field(c, F_COLOR)) == RED {
                    return Err(format!("red-red violation under key {key}"));
                }
            }
        }
        let lh = walk(mem, left, lo, Some(key), keys, depth + 1)?;
        keys.push(key);
        let rh = walk(mem, right, Some(key), hi, keys, depth + 1)?;
        if lh != rh {
            return Err(format!("black-height mismatch at key {key}: {lh} vs {rh}"));
        }
        Ok(lh + usize::from(color == BLACK))
    }
    let root = mem.read_word(root_ptr);
    if root != NIL && mem.read_word(field(root, F_COLOR)) != BLACK {
        return Err("root is not black".into());
    }
    let mut keys = Vec::new();
    walk(mem, root, None, None, &mut keys, 0)?;
    Ok(keys)
}

/// Parameters of the Red-Black Tree benchmark.
#[derive(Debug, Clone, Copy)]
pub struct RbTreeParams {
    /// Initial number of elements (the paper uses 100).
    pub initial_size: usize,
    /// Transactions per thread.
    pub txs_per_thread: usize,
    /// Percent of lookups (inserts and deletes split the rest evenly).
    pub lookup_percent: u32,
    /// Keys are drawn from `1..=key_range`.
    pub key_range: u64,
}

impl Default for RbTreeParams {
    fn default() -> Self {
        RbTreeParams {
            initial_size: 100,
            txs_per_thread: 60,
            lookup_percent: 50,
            key_range: 400,
        }
    }
}

impl RbTreeParams {
    /// The paper's configuration (100 elements, 50/25/25).
    pub fn paper() -> Self {
        RbTreeParams {
            txs_per_thread: 1000,
            ..Self::default()
        }
    }

    /// A miniature configuration for fast tests.
    pub fn quick() -> Self {
        RbTreeParams {
            initial_size: 20,
            txs_per_thread: 10,
            key_range: 64,
            ..Self::default()
        }
    }
}

/// The red-black-tree workload.
#[derive(Debug)]
pub struct RbTreeWorkload {
    params: RbTreeParams,
    root_ptr: Option<Addr>,
    pool: Vec<u64>,
}

impl RbTreeWorkload {
    /// Creates the workload with the given parameters.
    pub fn new(params: RbTreeParams) -> Self {
        RbTreeWorkload {
            params,
            root_ptr: None,
            pool: Vec::new(),
        }
    }

    /// Address of the root pointer (after setup).
    pub fn root_ptr(&self) -> Addr {
        self.root_ptr.expect("setup must run first")
    }
}

impl Workload for RbTreeWorkload {
    fn name(&self) -> &str {
        "rbtree"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        let root_ptr = mem.alloc_lines(1).first_word();
        mem.write_word(root_ptr, NIL);
        self.root_ptr = Some(root_ptr);
        // Build the initial tree by running inserts through the same
        // logic against a scratch TxMemory backed by direct memory ops.
        let tree = RbTree { root_ptr };
        let mut rng = SmallRng::seed_from_u64(0x5EED_7EEE);
        let mut inserted = 0;
        while inserted < self.params.initial_size {
            let key = rng.gen_range(1..=self.params.key_range);
            let node = mem.alloc_lines(1).0;
            if run_direct(mem, |m| tree.insert(m, key, key * 2, node)) {
                inserted += 1;
            }
        }
        let per_thread = self.params.txs_per_thread;
        self.pool = (0..per_thread * n_threads)
            .map(|_| mem.alloc_lines(1).0)
            .collect();
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        let per_thread = self.params.txs_per_thread;
        Box::new(RbThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: per_thread,
            tree: RbTree {
                root_ptr: self.root_ptr(),
            },
            pool: self.pool[tid * per_thread..(tid + 1) * per_thread].to_vec(),
            params: self.params,
        })
    }
}

/// Runs transactional logic directly against the store (initialization
/// helper; no concurrency, no protocol).
fn run_direct<F>(mem: &mut MvmStore, f: F) -> bool
where
    F: Fn(&mut TxMemory) -> Result<bool, NeedRead>,
{
    let mut txm = TxMemory::default();
    loop {
        // Refresh reads from memory until the logic completes. Writes
        // restart from a clean overlay on every attempt.
        txm.begin_attempt();
        match f(&mut txm) {
            Ok(result) => {
                // Apply writes.
                let writes: Vec<(Addr, Word)> = txm.drain_writes();
                for (a, v) in writes {
                    mem.write_word(a, v);
                }
                return result;
            }
            Err(NeedRead(a)) => {
                let v = mem.read_word(a);
                txm.supply_public(a, v);
            }
        }
    }
}

#[derive(Debug)]
struct RbThread {
    rng: SmallRng,
    remaining: usize,
    tree: RbTree,
    pool: Vec<u64>,
    params: RbTreeParams,
}

impl ThreadWorkload for RbThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let p = self.rng.gen_range(0..100);
        let key = self.rng.gen_range(1..=self.params.key_range);
        let insert_cut = self.params.lookup_percent + (100 - self.params.lookup_percent) / 2;
        let kind = if p < self.params.lookup_percent {
            RbOpKind::Lookup
        } else if p < insert_cut {
            RbOpKind::Insert {
                new_node: self.pool.pop().expect("pool sized to tx count"),
            }
        } else {
            RbOpKind::Remove
        };
        Some(LogicTx::boxed(RbOp {
            tree: self.tree,
            key,
            kind,
        }))
    }
}

/// Which tree operation a transaction performs.
#[derive(Debug, Clone, Copy)]
pub enum RbOpKind {
    /// Membership test (read-only).
    Lookup,
    /// Insert with a preallocated node.
    Insert {
        /// Line number of the node to link in.
        new_node: u64,
    },
    /// Delete by key.
    Remove,
}

/// One tree operation as transactional logic.
#[derive(Debug)]
pub struct RbOp {
    /// The tree to operate on.
    pub tree: RbTree,
    /// Target key.
    pub key: Word,
    /// Operation kind.
    pub kind: RbOpKind,
}

impl TxLogic for RbOp {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        match self.kind {
            RbOpKind::Lookup => {
                let _ = self.tree.lookup(mem, self.key)?;
            }
            RbOpKind::Insert { new_node } => {
                let _ = self.tree.insert(mem, self.key, self.key * 2, new_node)?;
            }
            RbOpKind::Remove => {
                let _ = self.tree.remove(mem, self.key)?;
            }
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        15
    }

    /// The paper's study found "multiple write skews in a Red-Black Tree
    /// implementation": two rebalancing updates can read each other's
    /// regions while writing disjoint nodes, committing a structurally
    /// broken tree under plain SI. Following section 5.1, update
    /// operations promote their structural reads; lookups stay
    /// unpromoted and never abort.
    fn promote_reads(&self) -> bool {
        !matches!(self.kind, RbOpKind::Lookup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn fresh(mem: &mut MvmStore) -> RbTree {
        let root_ptr = mem.alloc_lines(1).first_word();
        mem.write_word(root_ptr, NIL);
        RbTree { root_ptr }
    }

    fn insert(mem: &mut MvmStore, tree: RbTree, key: Word) -> bool {
        let node = mem.alloc_lines(1).0;
        run_direct(mem, |m| tree.insert(m, key, key, node))
    }

    fn remove(mem: &mut MvmStore, tree: RbTree, key: Word) -> bool {
        run_direct(mem, |m| tree.remove(m, key))
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let mut mem = MvmStore::new();
        let tree = fresh(&mut mem);
        for k in 1..=64 {
            assert!(insert(&mut mem, tree, k));
            let keys = check_tree(&mem, tree.root_ptr).expect("invariants hold");
            assert_eq!(keys.len(), k as usize);
        }
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut mem = MvmStore::new();
        let tree = fresh(&mut mem);
        assert!(insert(&mut mem, tree, 5));
        assert!(!insert(&mut mem, tree, 5));
        assert_eq!(check_tree(&mem, tree.root_ptr).unwrap(), vec![5]);
    }

    #[test]
    fn remove_all_in_various_orders() {
        for seed in 0..4u64 {
            let mut mem = MvmStore::new();
            let tree = fresh(&mut mem);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut reference = BTreeSet::new();
            for _ in 0..80 {
                let k = rng.gen_range(1..60);
                insert(&mut mem, tree, k);
                reference.insert(k);
            }
            let mut keys: Vec<Word> = reference.iter().copied().collect();
            // Remove in a shuffled order.
            for i in (1..keys.len()).rev() {
                keys.swap(i, rng.gen_range(0..=i));
            }
            for k in keys {
                assert!(remove(&mut mem, tree, k), "key {k} present");
                reference.remove(&k);
                let got = check_tree(&mem, tree.root_ptr).expect("invariants hold");
                let want: Vec<Word> = reference.iter().copied().collect();
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut mem = MvmStore::new();
        let tree = fresh(&mut mem);
        insert(&mut mem, tree, 3);
        assert!(!remove(&mut mem, tree, 9));
        assert_eq!(check_tree(&mem, tree.root_ptr).unwrap(), vec![3]);
    }

    #[test]
    fn random_interleaved_ops_match_reference() {
        let mut mem = MvmStore::new();
        let tree = fresh(&mut mem);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut reference = BTreeSet::new();
        for _ in 0..500 {
            let k = rng.gen_range(1..100u64);
            if rng.gen_bool(0.5) {
                assert_eq!(insert(&mut mem, tree, k), reference.insert(k));
            } else {
                assert_eq!(remove(&mut mem, tree, k), reference.remove(&k));
            }
            let got = check_tree(&mem, tree.root_ptr).expect("invariants hold");
            let want: Vec<Word> = reference.iter().copied().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn workload_setup_builds_valid_tree() {
        let mut w = RbTreeWorkload::new(RbTreeParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 2);
        let keys = check_tree(&mem, w.root_ptr()).expect("valid initial tree");
        assert_eq!(keys.len(), RbTreeParams::quick().initial_size);
    }
}

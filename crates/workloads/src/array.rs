//! The Array microbenchmark (section 6.2 of the paper).
//!
//! A fixed-size array allowing concurrent conflict-free access to
//! disjoint cells, exercised with two transaction types:
//!
//! * **long-running read transactions** that iterate over the entire
//!   array (20% of the mix), and
//! * **short update transactions** that read-modify-write two random
//!   elements (80% of the mix).
//!
//! Each element occupies its own cache line, so updates to distinct
//! elements never conflict, even at line granularity. Under 2PL, any
//! update transaction committing during a scan aborts the scan (the
//! scan's read set covers the whole array) — with enough update traffic
//! the scans livelock, which is the paper's motivating pathology. SI-TM
//! commits every scan from its snapshot; only the rare collision of two
//! updates on the same element aborts (write-write). The paper reports
//! a ~3000x abort reduction over 2PL and ~20x speedup at 32 threads.

use sitm_mvm::{Addr, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxOp, TxProgram, Workload};

/// Parameters of the Array benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ArrayParams {
    /// Number of array entries (the paper uses 30 000; the default is
    /// scaled for simulation turnaround, preserving the read:write ratio
    /// pathology).
    pub entries: usize,
    /// Transactions per thread (the paper uses 1000).
    pub txs_per_thread: usize,
    /// Fraction of long-running scan transactions, in percent.
    pub scan_percent: u32,
}

impl Default for ArrayParams {
    fn default() -> Self {
        ArrayParams {
            entries: 1024,
            txs_per_thread: 50,
            scan_percent: 20,
        }
    }
}

impl ArrayParams {
    /// The paper's configuration (30K entries, 1000 transactions per
    /// thread). Expensive: a single scan issues 30K reads.
    pub fn paper() -> Self {
        ArrayParams {
            entries: 30_000,
            txs_per_thread: 1000,
            scan_percent: 20,
        }
    }

    /// A miniature configuration for fast tests.
    pub fn quick() -> Self {
        ArrayParams {
            entries: 64,
            txs_per_thread: 10,
            scan_percent: 20,
        }
    }
}

/// The Array workload. Build with [`ArrayWorkload::new`], then hand to
/// the engine.
#[derive(Debug)]
pub struct ArrayWorkload {
    params: ArrayParams,
    base_line: Option<u64>,
}

impl ArrayWorkload {
    /// Creates the workload with the given parameters.
    pub fn new(params: ArrayParams) -> Self {
        ArrayWorkload {
            params,
            base_line: None,
        }
    }

    fn entry_addr(base_line: u64, i: usize) -> Addr {
        // One entry per cache line: disjoint cells never falsely share.
        Addr((base_line + i as u64) * WORDS_PER_LINE as u64)
    }
}

impl Workload for ArrayWorkload {
    fn name(&self) -> &str {
        "array"
    }

    fn setup(&mut self, mem: &mut MvmStore, _n_threads: usize) {
        let base = mem.alloc_lines(self.params.entries as u64);
        for i in 0..self.params.entries {
            mem.write_word(Self::entry_addr(base.0, i), i as Word);
        }
        self.base_line = Some(base.0);
    }

    fn thread_workload(&self, _tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        let base_line = self.base_line.expect("setup must run first");
        Box::new(ArrayThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: self.params.txs_per_thread,
            base_line,
            entries: self.params.entries,
            scan_percent: self.params.scan_percent,
        })
    }
}

#[derive(Debug)]
struct ArrayThread {
    rng: SmallRng,
    remaining: usize,
    base_line: u64,
    entries: usize,
    scan_percent: u32,
}

impl ThreadWorkload for ArrayThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.rng.gen_range(0..100) < self.scan_percent {
            Some(Box::new(ScanTx {
                base_line: self.base_line,
                entries: self.entries,
                pos: 0,
            }))
        } else {
            let i = self.rng.gen_range(0..self.entries);
            let mut j = self.rng.gen_range(0..self.entries);
            if j == i {
                j = (j + 1) % self.entries;
            }
            Some(Box::new(UpdateTx {
                targets: [
                    ArrayWorkload::entry_addr(self.base_line, i),
                    ArrayWorkload::entry_addr(self.base_line, j),
                ],
                step: 0,
                pending_write: None,
            }))
        }
    }
}

/// Long-running read-only transaction: iterates over the entire array.
#[derive(Debug)]
struct ScanTx {
    base_line: u64,
    entries: usize,
    pos: usize,
}

impl TxProgram for ScanTx {
    fn resume(&mut self, _input: Option<Word>) -> TxOp {
        if self.pos < self.entries {
            let op = TxOp::Read(ArrayWorkload::entry_addr(self.base_line, self.pos));
            self.pos += 1;
            op
        } else {
            TxOp::Commit
        }
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

/// Short update transaction: read-modify-write of two random elements.
#[derive(Debug)]
struct UpdateTx {
    targets: [Addr; 2],
    step: usize,
    pending_write: Option<(Addr, Word)>,
}

impl TxProgram for UpdateTx {
    fn resume(&mut self, input: Option<Word>) -> TxOp {
        if let Some((addr, value)) = self.pending_write.take() {
            // `input` carries the value just read for this target.
            let _ = value;
            let read = input.expect("read value for RMW");
            return TxOp::Write(addr, read.wrapping_add(1));
        }
        if self.step < self.targets.len() {
            let addr = self.targets[self.step];
            self.step += 1;
            self.pending_write = Some((addr, 0));
            TxOp::Read(addr)
        } else {
            TxOp::Commit
        }
    }

    fn reset(&mut self) {
        self.step = 0;
        self.pending_write = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_reads_every_entry_then_commits() {
        let mut tx = ScanTx {
            base_line: 0,
            entries: 3,
            pos: 0,
        };
        assert_eq!(tx.resume(None), TxOp::Read(Addr(0)));
        assert_eq!(tx.resume(Some(0)), TxOp::Read(Addr(8)));
        assert_eq!(tx.resume(Some(0)), TxOp::Read(Addr(16)));
        assert_eq!(tx.resume(Some(0)), TxOp::Commit);
        tx.reset();
        assert_eq!(tx.resume(None), TxOp::Read(Addr(0)));
    }

    #[test]
    fn update_is_rmw_of_two_cells() {
        let mut tx = UpdateTx {
            targets: [Addr(0), Addr(8)],
            step: 0,
            pending_write: None,
        };
        assert_eq!(tx.resume(None), TxOp::Read(Addr(0)));
        assert_eq!(tx.resume(Some(5)), TxOp::Write(Addr(0), 6));
        assert_eq!(tx.resume(None), TxOp::Read(Addr(8)));
        assert_eq!(tx.resume(Some(7)), TxOp::Write(Addr(8), 8));
        assert_eq!(tx.resume(None), TxOp::Commit);
    }

    #[test]
    fn setup_initializes_entries() {
        let mut w = ArrayWorkload::new(ArrayParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 2);
        let base = w.base_line.unwrap();
        assert_eq!(mem.read_word(ArrayWorkload::entry_addr(base, 5)), 5);
    }

    #[test]
    fn thread_workload_yields_expected_count() {
        let mut w = ArrayWorkload::new(ArrayParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 99);
        let mut n = 0;
        while tw.next_transaction().is_some() {
            n += 1;
        }
        assert_eq!(n, ArrayParams::quick().txs_per_thread);
    }

    #[test]
    fn mix_contains_both_transaction_kinds() {
        let mut w = ArrayWorkload::new(ArrayParams {
            entries: 16,
            txs_per_thread: 200,
            scan_percent: 20,
        });
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 7);
        let mut scans = 0;
        let mut updates = 0;
        while let Some(mut tx) = tw.next_transaction() {
            // A scan's first op reads entry 0; updates read random cells
            // and then write.
            match tx.resume(None) {
                TxOp::Read(_) => {}
                other => panic!("first op must be a read: {other:?}"),
            }
            match tx.resume(Some(0)) {
                TxOp::Write(..) => updates += 1,
                TxOp::Read(_) | TxOp::Commit => scans += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(scans > 10, "scans present: {scans}");
        assert!(updates > 100, "updates present: {updates}");
    }
}

//! Enumeration of the benchmark suite, as used by the figure harnesses.

use sitm_sim::Workload;

use crate::array::{ArrayParams, ArrayWorkload};
use crate::list::{ListParams, ListWorkload};
use crate::rbtree::{RbTreeParams, RbTreeWorkload};
use crate::stamp::{
    BayesParams, BayesWorkload, GenomeParams, GenomeWorkload, IntruderParams, IntruderWorkload,
    KmeansParams, KmeansWorkload, LabyrinthParams, LabyrinthWorkload, Ssca2Params, Ssca2Workload,
    VacationParams, VacationWorkload,
};

/// How large to configure each benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny instances for unit/integration tests.
    Quick,
    /// Scaled-down instances preserving each benchmark's contention
    /// structure; the default for the figure harnesses.
    #[default]
    Default,
}

/// Divides a fixed total amount of work among threads (STAMP runs a
/// fixed input regardless of thread count, so the applications scale
/// *strongly*; the RSTM microbenchmarks instead run a fixed count per
/// thread, as the paper describes).
pub fn fixed_share(total: usize, tid: usize, n_threads: usize) -> usize {
    total / n_threads + usize::from(tid < total % n_threads)
}

/// The three RSTM microbenchmarks (array, list, red-black tree).
pub fn microbenchmarks(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Quick => vec![
            Box::new(ArrayWorkload::new(ArrayParams::quick())),
            Box::new(ListWorkload::new(ListParams::quick())),
            Box::new(RbTreeWorkload::new(RbTreeParams::quick())),
        ],
        Scale::Default => vec![
            Box::new(ArrayWorkload::new(ArrayParams::default())),
            Box::new(ListWorkload::new(ListParams::default())),
            Box::new(RbTreeWorkload::new(RbTreeParams::default())),
        ],
    }
}

/// The seven STAMP-like kernels.
pub fn stamp_kernels(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Quick => vec![
            Box::new(GenomeWorkload::new(GenomeParams::quick())),
            Box::new(IntruderWorkload::new(IntruderParams::quick())),
            Box::new(KmeansWorkload::new(KmeansParams::quick())),
            Box::new(LabyrinthWorkload::new(LabyrinthParams::quick())),
            Box::new(Ssca2Workload::new(Ssca2Params::quick())),
            Box::new(VacationWorkload::new(VacationParams::quick())),
            Box::new(BayesWorkload::new(BayesParams::quick())),
        ],
        Scale::Default => vec![
            Box::new(GenomeWorkload::new(GenomeParams::default())),
            Box::new(IntruderWorkload::new(IntruderParams::default())),
            Box::new(KmeansWorkload::new(KmeansParams::default())),
            Box::new(LabyrinthWorkload::new(LabyrinthParams::default())),
            Box::new(Ssca2Workload::new(Ssca2Params::default())),
            Box::new(VacationWorkload::new(VacationParams::default())),
            Box::new(BayesWorkload::new(BayesParams::default())),
        ],
    }
}

/// All ten benchmarks, microbenchmarks first (the Figure 7/8 ordering).
pub fn all_workloads(scale: Scale) -> Vec<Box<dyn Workload>> {
    let mut v = microbenchmarks(scale);
    v.extend(stamp_kernels(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_share_partitions_exactly() {
        for total in [0usize, 1, 7, 100, 1920] {
            for n in [1usize, 2, 3, 8, 32] {
                let sum: usize = (0..n).map(|tid| fixed_share(total, tid, n)).sum();
                assert_eq!(sum, total, "total {total} over {n} threads");
                // Shares differ by at most one.
                let shares: Vec<usize> = (0..n).map(|t| fixed_share(total, t, n)).collect();
                let min = shares.iter().min().unwrap();
                let max = shares.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn registry_has_ten_benchmarks_with_unique_names() {
        let all = all_workloads(Scale::Quick);
        assert_eq!(all.len(), 10);
        let mut names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "names must be unique");
    }
}

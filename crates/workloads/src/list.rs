//! The List microbenchmark (section 6.2) and the Listing 2 write-skew
//! scenario (section 5).
//!
//! A sorted singly-linked list in simulated memory: every operation
//! traverses from the head until it finds its position, so read sets
//! grow with list length while write sets stay at one or two nodes. The
//! paper runs 40% insert / 40% remove / 20% lookup and reports a >30x
//! abort reduction for SI-TM over 2PL and ~14x speedup at 32 threads.
//!
//! The `remove` operation demonstrates the Listing 2 write-skew anomaly:
//! under snapshot isolation, two concurrent removals of *adjacent*
//! elements have disjoint write sets (each writes only its predecessor's
//! next pointer), so both commit — and the second element's unlinking is
//! lost. Setting the removed node's next pointer to null (the commented
//! line 10 of Listing 2) forces a write-write conflict in exactly that
//! schedule. [`ListParams::skew_fix`] toggles the fix; the write-skew
//! tooling in `sitm-skew` detects the unfixed variant.
//!
//! Node layout (one node per cache line, so node-granularity conflicts):
//! word 0 = value, word 1 = next (line number of the successor, or
//! [`NULL`]).

use sitm_mvm::{Addr, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Null successor marker (no node lives at line `u64::MAX`).
pub const NULL: Word = u64::MAX;

/// Word address of a node's value field, given its line number.
fn value_addr(node_line: u64) -> Addr {
    Addr(node_line * WORDS_PER_LINE as u64)
}

/// Word address of a node's next field.
fn next_addr(node_line: u64) -> Addr {
    Addr(node_line * WORDS_PER_LINE as u64 + 1)
}

/// Parameters of the List benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ListParams {
    /// Initial number of elements (the paper uses 1000).
    pub initial_size: usize,
    /// Transactions per thread (the paper uses 1000).
    pub txs_per_thread: usize,
    /// Percent of insert operations.
    pub insert_percent: u32,
    /// Percent of remove operations (lookups make up the remainder).
    pub remove_percent: u32,
    /// Value range: keys are drawn from `1..=value_range`.
    pub value_range: u64,
    /// Apply the Listing 2 fix (null the removed node's next pointer) so
    /// adjacent removals conflict write-write instead of skewing.
    pub skew_fix: bool,
}

impl Default for ListParams {
    fn default() -> Self {
        ListParams {
            initial_size: 128,
            txs_per_thread: 60,
            insert_percent: 40,
            remove_percent: 40,
            value_range: 512,
            skew_fix: true,
        }
    }
}

impl ListParams {
    /// The paper's configuration (1000 elements, 1000 transactions per
    /// thread, 40/40/20 insert/remove/lookup).
    pub fn paper() -> Self {
        ListParams {
            initial_size: 1000,
            txs_per_thread: 1000,
            value_range: 4000,
            ..Self::default()
        }
    }

    /// A miniature configuration for fast tests.
    pub fn quick() -> Self {
        ListParams {
            initial_size: 16,
            txs_per_thread: 10,
            value_range: 64,
            ..Self::default()
        }
    }
}

/// The sorted-linked-list workload.
#[derive(Debug)]
pub struct ListWorkload {
    params: ListParams,
    head_line: Option<u64>,
    /// Pool of preallocated nodes for inserts, handed out per thread.
    pool: Vec<u64>,
}

impl ListWorkload {
    /// Creates the workload with the given parameters.
    pub fn new(params: ListParams) -> Self {
        ListWorkload {
            params,
            head_line: None,
            pool: Vec::new(),
        }
    }

    /// Line number of the sentinel head node (after setup).
    pub fn head_line(&self) -> u64 {
        self.head_line.expect("setup must run first")
    }

    /// Reads the committed list contents non-transactionally (post-run
    /// verification).
    pub fn snapshot_values(mem: &MvmStore, head_line: u64) -> Vec<Word> {
        let mut out = Vec::new();
        let mut cur = mem.read_word(next_addr(head_line));
        let mut hops = 0;
        while cur != NULL {
            out.push(mem.read_word(value_addr(cur)));
            cur = mem.read_word(next_addr(cur));
            hops += 1;
            assert!(hops < 1_000_000, "list is cyclic");
        }
        out
    }
}

impl Workload for ListWorkload {
    fn name(&self) -> &str {
        "list"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        // Sentinel head with value 0; keys are >= 1.
        let head = mem.alloc_lines(1).0;
        self.head_line = Some(head);
        // Initial sorted contents: evenly spaced keys.
        let mut keys: Vec<u64> = (0..self.params.initial_size)
            .map(|i| {
                1 + (i as u64 * self.params.value_range) / self.params.initial_size.max(1) as u64
            })
            .collect();
        keys.dedup();
        let mut prev = head;
        mem.write_word(value_addr(head), 0);
        for key in keys {
            let node = mem.alloc_lines(1).0;
            mem.write_word(value_addr(node), key);
            mem.write_word(next_addr(prev), node);
            prev = node;
        }
        mem.write_word(next_addr(prev), NULL);
        // Preallocate insert nodes: one per potential insert.
        let per_thread = self.params.txs_per_thread;
        let total = per_thread * n_threads;
        self.pool = (0..total).map(|_| mem.alloc_lines(1).0).collect();
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        let head_line = self.head_line();
        let per_thread = self.params.txs_per_thread;
        let pool = self.pool[tid * per_thread..(tid + 1) * per_thread].to_vec();
        Box::new(ListThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: per_thread,
            head_line,
            pool,
            params: self.params,
        })
    }
}

#[derive(Debug)]
struct ListThread {
    rng: SmallRng,
    remaining: usize,
    head_line: u64,
    pool: Vec<u64>,
    params: ListParams,
}

impl ThreadWorkload for ListThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let p = self.rng.gen_range(0..100);
        let target = self.rng.gen_range(1..=self.params.value_range);
        let op = if p < self.params.insert_percent {
            let node = self.pool.pop().expect("pool sized to insert count");
            ListOpKind::Insert { new_node: node }
        } else if p < self.params.insert_percent + self.params.remove_percent {
            ListOpKind::Remove {
                fix_skew: self.params.skew_fix,
            }
        } else {
            ListOpKind::Lookup
        };
        Some(LogicTx::boxed(ListOp {
            head_line: self.head_line,
            target,
            kind: op,
        }))
    }
}

/// Which list operation a transaction performs.
#[derive(Debug, Clone, Copy)]
pub enum ListOpKind {
    /// Insert `target`, linking in the given preallocated node (no-op if
    /// the key is present).
    Insert {
        /// Line number of the node to link in.
        new_node: u64,
    },
    /// Remove `target` (no-op if absent); optionally null the removed
    /// node's next pointer (the Listing 2 write-skew fix).
    Remove {
        /// Apply the write-skew fix.
        fix_skew: bool,
    },
    /// Membership test; read-only.
    Lookup,
}

/// One sorted-list operation as transactional logic.
#[derive(Debug)]
pub struct ListOp {
    /// Sentinel head node line.
    pub head_line: u64,
    /// Key this operation targets.
    pub target: Word,
    /// Operation kind.
    pub kind: ListOpKind,
}

impl TxLogic for ListOp {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        // Traverse: find prev = last node with value < target and
        // next = first node with value >= target (or NULL).
        let mut prev = self.head_line;
        let mut next = mem.read(next_addr(prev))?;
        while next != NULL {
            let v = mem.read(value_addr(next))?;
            if v >= self.target {
                break;
            }
            prev = next;
            next = mem.read(next_addr(prev))?;
        }
        let found = next != NULL && mem.read(value_addr(next))? == self.target;
        match self.kind {
            ListOpKind::Lookup => {}
            ListOpKind::Insert { new_node } => {
                if !found {
                    mem.write(value_addr(new_node), self.target);
                    mem.write(next_addr(new_node), next);
                    mem.write(next_addr(prev), new_node);
                }
            }
            ListOpKind::Remove { fix_skew } => {
                if found {
                    let after = mem.read(next_addr(next))?;
                    mem.write(next_addr(prev), after);
                    if fix_skew {
                        // Listing 2, line 10: force a write-write
                        // conflict with a concurrent removal of the
                        // successor.
                        mem.write(next_addr(next), NULL);
                    }
                }
            }
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    fn build_list(mem: &mut MvmStore, keys: &[u64]) -> u64 {
        let head = mem.alloc_lines(1).0;
        mem.write_word(value_addr(head), 0);
        let mut prev = head;
        for &k in keys {
            let node = mem.alloc_lines(1).0;
            mem.write_word(value_addr(node), k);
            mem.write_word(next_addr(prev), node);
            prev = node;
        }
        mem.write_word(next_addr(prev), NULL);
        head
    }

    /// Drives a ListOp program directly against the store (as a
    /// degenerate single-thread "protocol").
    fn execute(mem: &mut MvmStore, op: ListOp) {
        let mut p = LogicTx::new(op);
        let mut input = None;
        loop {
            match p.resume(input.take()) {
                TxOp::Read(a) => input = Some(mem.read_word(a)),
                TxOp::Write(a, v) => mem.write_word(a, v),
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
    }

    #[test]
    fn insert_keeps_list_sorted() {
        let mut mem = MvmStore::new();
        let head = build_list(&mut mem, &[2, 5, 9]);
        let node = mem.alloc_lines(1).0;
        execute(
            &mut mem,
            ListOp {
                head_line: head,
                target: 7,
                kind: ListOpKind::Insert { new_node: node },
            },
        );
        assert_eq!(ListWorkload::snapshot_values(&mem, head), vec![2, 5, 7, 9]);
    }

    #[test]
    fn insert_duplicate_is_noop() {
        let mut mem = MvmStore::new();
        let head = build_list(&mut mem, &[2, 5]);
        let node = mem.alloc_lines(1).0;
        execute(
            &mut mem,
            ListOp {
                head_line: head,
                target: 5,
                kind: ListOpKind::Insert { new_node: node },
            },
        );
        assert_eq!(ListWorkload::snapshot_values(&mem, head), vec![2, 5]);
    }

    #[test]
    fn insert_at_ends() {
        let mut mem = MvmStore::new();
        let head = build_list(&mut mem, &[5]);
        for (target, expect) in [(1, vec![1, 5]), (9, vec![1, 5, 9])] {
            let node = mem.alloc_lines(1).0;
            execute(
                &mut mem,
                ListOp {
                    head_line: head,
                    target,
                    kind: ListOpKind::Insert { new_node: node },
                },
            );
            assert_eq!(ListWorkload::snapshot_values(&mem, head), expect);
        }
    }

    #[test]
    fn remove_unlinks_and_nulls_with_fix() {
        let mut mem = MvmStore::new();
        let head = build_list(&mut mem, &[2, 5, 9]);
        // Locate node 5's line to check the fix below.
        let n2 = mem.read_word(next_addr(head));
        let n5 = mem.read_word(next_addr(n2));
        execute(
            &mut mem,
            ListOp {
                head_line: head,
                target: 5,
                kind: ListOpKind::Remove { fix_skew: true },
            },
        );
        assert_eq!(ListWorkload::snapshot_values(&mem, head), vec![2, 9]);
        assert_eq!(mem.read_word(next_addr(n5)), NULL, "fix nulled the pointer");
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut mem = MvmStore::new();
        let head = build_list(&mut mem, &[2, 9]);
        execute(
            &mut mem,
            ListOp {
                head_line: head,
                target: 5,
                kind: ListOpKind::Remove { fix_skew: true },
            },
        );
        assert_eq!(ListWorkload::snapshot_values(&mem, head), vec![2, 9]);
    }

    #[test]
    fn setup_produces_sorted_initial_list() {
        let mut w = ListWorkload::new(ListParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 2);
        let values = ListWorkload::snapshot_values(&mem, w.head_line());
        assert!(!values.is_empty());
        assert!(values.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
    }

    #[test]
    fn thread_workloads_are_seed_deterministic() {
        let mut w = ListWorkload::new(ListParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 2);
        let drain = |tw: &mut Box<dyn ThreadWorkload>| {
            let mut ops = Vec::new();
            while let Some(mut tx) = tw.next_transaction() {
                ops.push(format!("{:?}", tx.resume(None)));
            }
            ops
        };
        let mut a = w.thread_workload(0, 42);
        let mut b = w.thread_workload(0, 42);
        assert_eq!(drain(&mut a), drain(&mut b));
    }
}

//! The genome kernel: gene sequencing by segment deduplication and
//! overlap matching.
//!
//! STAMP's genome spends its transactional time in two phases: (1)
//! inserting DNA segments into a shared hash set to remove duplicates,
//! and (2) matching segment overlaps, which probes shared tables and
//! links segments into chains. Transactions are of moderate length with
//! a high read:write ratio (probe sequences followed by at most one or
//! two writes), and contention comes from hash collisions.
//!
//! The kernel reproduces this with an open-addressing hash set in
//! simulated memory (one slot per cache line): 70% *dedup-insert*
//! transactions probe linearly and claim the first empty slot; 30%
//! *match* transactions probe for several existing segments read-only
//! and link one chain pointer.
//!
//! Expectation (Figure 7/8): both conflict serializability and snapshot
//! isolation eliminate most 2PL aborts here, performing almost on par
//! (~3.8x speedup over 2PL at 32 threads for both).

use sitm_mvm::{Addr, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Parameters of the genome kernel.
#[derive(Debug, Clone, Copy)]
pub struct GenomeParams {
    /// Hash-table slots (one per line).
    pub table_slots: usize,
    /// Number of distinct segment ids inserted.
    pub segments: usize,
    /// Total transactions across all threads (STAMP runs a fixed
    /// input, so the work is divided among threads).
    pub total_txs: usize,
}

impl Default for GenomeParams {
    fn default() -> Self {
        GenomeParams {
            table_slots: 2048,
            segments: 1024,
            total_txs: 1920,
        }
    }
}

impl GenomeParams {
    /// Miniature configuration for fast tests.
    pub fn quick() -> Self {
        GenomeParams {
            table_slots: 64,
            segments: 32,
            total_txs: 40,
        }
    }
}

/// The genome workload. One hash slot per cache line; slot word 0 holds
/// the segment id (0 = empty), word 1 holds the chain link.
#[derive(Debug)]
pub struct GenomeWorkload {
    params: GenomeParams,
    table_base: Option<u64>,
    n_threads: usize,
}

impl GenomeWorkload {
    /// Creates the workload.
    pub fn new(params: GenomeParams) -> Self {
        GenomeWorkload {
            params,
            table_base: None,
            n_threads: 1,
        }
    }

    fn slot_addr(base: u64, slot: usize) -> Addr {
        Addr((base + slot as u64) * WORDS_PER_LINE as u64)
    }
}

impl Workload for GenomeWorkload {
    fn name(&self) -> &str {
        "genome"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        self.n_threads = n_threads;
        let base = mem.alloc_lines(self.params.table_slots as u64).0;
        self.table_base = Some(base);
        // Pre-populate half the segments so match transactions find
        // work.
        let mut rng = SmallRng::seed_from_u64(0x6E0);
        for _ in 0..self.params.segments / 2 {
            let seg = rng.gen_range(1..=self.params.segments as u64);
            let mut slot = (seg as usize * 31) % self.params.table_slots;
            loop {
                let a = Self::slot_addr(base, slot);
                let cur = mem.read_word(a);
                if cur == 0 {
                    mem.write_word(a, seg);
                    break;
                }
                if cur == seg {
                    break;
                }
                slot = (slot + 1) % self.params.table_slots;
            }
        }
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        Box::new(GenomeThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: crate::registry::fixed_share(self.params.total_txs, tid, self.n_threads),
            base: self.table_base.expect("setup must run first"),
            params: self.params,
        })
    }
}

#[derive(Debug)]
struct GenomeThread {
    rng: SmallRng,
    remaining: usize,
    base: u64,
    params: GenomeParams,
}

impl ThreadWorkload for GenomeThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let seg = self.rng.gen_range(1..=self.params.segments as u64);
        if self.rng.gen_range(0..100) < 70 {
            Some(LogicTx::boxed(DedupInsert {
                base: self.base,
                slots: self.params.table_slots,
                segment: seg,
            }))
        } else {
            let probes: Vec<u64> = (0..6)
                .map(|_| self.rng.gen_range(1..=self.params.segments as u64))
                .collect();
            Some(LogicTx::boxed(MatchChain {
                base: self.base,
                slots: self.params.table_slots,
                probes,
                link_target: seg,
            }))
        }
    }
}

/// Phase-1 transaction: insert a segment into the shared hash set
/// (linear probing; no-op if present).
#[derive(Debug)]
struct DedupInsert {
    base: u64,
    slots: usize,
    segment: Word,
}

impl TxLogic for DedupInsert {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let mut slot = (self.segment as usize * 31) % self.slots;
        for _ in 0..self.slots {
            let a = GenomeWorkload::slot_addr(self.base, slot);
            let cur = mem.read(a)?;
            if cur == 0 {
                mem.write(a, self.segment);
                return Ok(());
            }
            if cur == self.segment {
                return Ok(()); // duplicate
            }
            slot = (slot + 1) % self.slots;
        }
        Ok(()) // table full: drop the segment
    }

    fn compute_cycles(&self) -> u64 {
        20
    }
}

/// Phase-2 transaction: probe several segments read-only, then link one
/// chain pointer (word 1 of the target's slot).
#[derive(Debug)]
struct MatchChain {
    base: u64,
    slots: usize,
    probes: Vec<Word>,
    link_target: Word,
}

impl MatchChain {
    fn find_slot(&self, mem: &mut TxMemory, seg: Word) -> Result<Option<usize>, NeedRead> {
        let mut slot = (seg as usize * 31) % self.slots;
        for _ in 0..self.slots {
            let cur = mem.read(GenomeWorkload::slot_addr(self.base, slot))?;
            if cur == seg {
                return Ok(Some(slot));
            }
            if cur == 0 {
                return Ok(None);
            }
            slot = (slot + 1) % self.slots;
        }
        Ok(None)
    }
}

impl TxLogic for MatchChain {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let mut last_found = None;
        for &seg in &self.probes {
            if let Some(slot) = self.find_slot(mem, seg)? {
                last_found = Some(slot);
            }
        }
        // Link the chain of the last found segment to the target.
        if let Some(slot) = last_found {
            let link = GenomeWorkload::slot_addr(self.base, slot).add(1);
            mem.write(link, self.link_target);
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        40
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    fn drive(mem: &mut MvmStore, mut tx: Box<dyn TxProgram>) {
        let mut input = None;
        loop {
            match tx.resume(input.take()) {
                TxOp::Read(a) => input = Some(mem.read_word(a)),
                TxOp::Write(a, v) => mem.write_word(a, v),
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
    }

    #[test]
    fn setup_populates_table() {
        let mut w = GenomeWorkload::new(GenomeParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let base = w.table_base.unwrap();
        let filled = (0..GenomeParams::quick().table_slots)
            .filter(|&s| mem.read_word(GenomeWorkload::slot_addr(base, s)) != 0)
            .count();
        assert!(filled > 0, "setup inserted segments");
    }

    #[test]
    fn dedup_insert_claims_one_slot_per_segment() {
        let mut w = GenomeWorkload::new(GenomeParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let base = w.table_base.unwrap();
        let count = |mem: &MvmStore, seg: Word| {
            (0..GenomeParams::quick().table_slots)
                .filter(|&s| mem.read_word(GenomeWorkload::slot_addr(base, s)) == seg)
                .count()
        };
        // Insert the same fresh segment twice: one slot claimed.
        let seg = 1000;
        for _ in 0..2 {
            drive(
                &mut mem,
                LogicTx::boxed(DedupInsert {
                    base,
                    slots: GenomeParams::quick().table_slots,
                    segment: seg,
                }),
            );
        }
        assert_eq!(count(&mem, seg), 1);
    }

    #[test]
    fn threads_complete_their_quota() {
        let mut w = GenomeWorkload::new(GenomeParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 3);
        let mut n = 0;
        while let Some(tx) = tw.next_transaction() {
            drive(&mut mem, tx);
            n += 1;
        }
        assert_eq!(n, GenomeParams::quick().total_txs);
    }
}

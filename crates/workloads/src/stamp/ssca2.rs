//! The ssca2 kernel: graph construction from the Scalable Synthetic
//! Compact Applications benchmark 2.
//!
//! STAMP's ssca2 (kernel 1) builds a large directed multigraph: each
//! transaction appends one edge to a node's adjacency array — a tiny
//! read-modify-write of the node's degree counter plus a slot write.
//! With far more nodes than threads, collisions are rare and absolute
//! abort rates are already low (<5% under 2PL in the paper), so no
//! system gains much; ssca2 is the "nothing to fix" control.
//!
//! Layout: one line per node: word 0 = degree, words 1..8 = adjacency
//! slots (spill appends beyond 7 edges drop silently — degree keeps
//! counting, matching the bounded-slot compact representation).

use sitm_mvm::{Addr, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Parameters of the ssca2 kernel.
#[derive(Debug, Clone, Copy)]
pub struct Ssca2Params {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Total edge-insertion transactions across all threads (fixed
    /// input, strong scaling).
    pub total_txs: usize,
}

impl Default for Ssca2Params {
    fn default() -> Self {
        Ssca2Params {
            nodes: 4096,
            total_txs: 3200,
        }
    }
}

impl Ssca2Params {
    /// Miniature configuration for fast tests.
    pub fn quick() -> Self {
        Ssca2Params {
            nodes: 32,
            total_txs: 40,
        }
    }
}

/// The ssca2 workload.
#[derive(Debug)]
pub struct Ssca2Workload {
    params: Ssca2Params,
    base: Option<u64>,
    n_threads: usize,
}

impl Ssca2Workload {
    /// Creates the workload.
    pub fn new(params: Ssca2Params) -> Self {
        Ssca2Workload {
            params,
            base: None,
            n_threads: 1,
        }
    }

    fn degree_addr(base: u64, node: usize) -> Addr {
        Addr((base + node as u64) * WORDS_PER_LINE as u64)
    }

    /// Total degree across all nodes (post-run verification).
    pub fn total_degree(mem: &MvmStore, base: u64, nodes: usize) -> Word {
        (0..nodes)
            .map(|n| mem.read_word(Self::degree_addr(base, n)))
            .sum()
    }

    /// Base line of the node array (after setup).
    pub fn base(&self) -> u64 {
        self.base.expect("setup must run first")
    }
}

impl Workload for Ssca2Workload {
    fn name(&self) -> &str {
        "ssca2"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        self.n_threads = n_threads;
        self.base = Some(mem.alloc_lines(self.params.nodes as u64).0);
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        Box::new(Ssca2Thread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: crate::registry::fixed_share(self.params.total_txs, tid, self.n_threads),
            base: self.base(),
            nodes: self.params.nodes,
        })
    }
}

#[derive(Debug)]
struct Ssca2Thread {
    rng: SmallRng,
    remaining: usize,
    base: u64,
    nodes: usize,
}

impl ThreadWorkload for Ssca2Thread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let from = self.rng.gen_range(0..self.nodes);
        let to = self.rng.gen_range(0..self.nodes) as Word;
        Some(LogicTx::boxed(AddEdge {
            base: self.base,
            from,
            to,
        }))
    }
}

/// One edge insertion: bump the degree, write the adjacency slot.
#[derive(Debug)]
struct AddEdge {
    base: u64,
    from: usize,
    to: Word,
}

impl TxLogic for AddEdge {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let deg_addr = Ssca2Workload::degree_addr(self.base, self.from);
        let degree = mem.read(deg_addr)?;
        mem.write(deg_addr, degree + 1);
        let slot = 1 + (degree as usize % (WORDS_PER_LINE - 1));
        mem.write(deg_addr.add(slot as u64), self.to + 1);
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    fn drive(mem: &mut MvmStore, mut tx: Box<dyn TxProgram>) {
        let mut input = None;
        loop {
            match tx.resume(input.take()) {
                TxOp::Read(a) => input = Some(mem.read_word(a)),
                TxOp::Write(a, v) => mem.write_word(a, v),
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
    }

    #[test]
    fn edges_accumulate_in_degree_counters() {
        let mut w = Ssca2Workload::new(Ssca2Params::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 21);
        let mut n = 0;
        while let Some(tx) = tw.next_transaction() {
            drive(&mut mem, tx);
            n += 1;
        }
        assert_eq!(
            Ssca2Workload::total_degree(&mem, w.base(), Ssca2Params::quick().nodes),
            n
        );
    }

    #[test]
    fn adjacency_slot_is_populated() {
        let mut w = Ssca2Workload::new(Ssca2Params::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        drive(
            &mut mem,
            LogicTx::boxed(AddEdge {
                base: w.base(),
                from: 3,
                to: 17,
            }),
        );
        let deg = Ssca2Workload::degree_addr(w.base(), 3);
        assert_eq!(mem.read_word(deg), 1);
        assert_eq!(mem.read_word(deg.add(1)), 18);
    }
}

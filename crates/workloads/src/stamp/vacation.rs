//! The vacation kernel: an online travel-reservation OLTP system.
//!
//! STAMP's vacation runs an in-memory travel database (flights, rooms,
//! cars, customers) under three transaction types: make-reservation
//! (dominant; queries many records read-only before writing at most a
//! couple), delete-customer, and update-tables. Transactions are long
//! and read-heavy — the paper calls vacation "an ideal candidate for
//! SI-TM" and measures under 1% of 2PL's aborts with linear scaling to
//! 32 threads, while CS drops off past 8 threads.
//!
//! The kernel keeps the same three transaction types over record tables
//! in simulated memory. Record layout (one line each): word 0 = total
//! slots, word 1 = reserved count, word 2 = price. Customer layout:
//! word 0 = reservation count, word 1 = total spent.

use sitm_mvm::{Addr, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Number of resource tables (flights, rooms, cars).
const TABLES: usize = 3;

/// Parameters of the vacation kernel.
#[derive(Debug, Clone, Copy)]
pub struct VacationParams {
    /// Records per resource table.
    pub records_per_table: usize,
    /// Number of customers.
    pub customers: usize,
    /// Records queried (read) per reservation transaction.
    pub queries_per_tx: usize,
    /// Total transactions across all threads (fixed input, strong
    /// scaling).
    pub total_txs: usize,
}

impl Default for VacationParams {
    fn default() -> Self {
        VacationParams {
            records_per_table: 8192,
            customers: 8192,
            queries_per_tx: 32,
            total_txs: 1600,
        }
    }
}

impl VacationParams {
    /// Miniature configuration for fast tests.
    pub fn quick() -> Self {
        VacationParams {
            records_per_table: 32,
            customers: 16,
            queries_per_tx: 6,
            total_txs: 40,
        }
    }
}

/// The vacation workload.
///
/// Each table also has an *index header* line (STAMP's tables are
/// red-black trees: every lookup traverses index nodes that
/// administrative updates rewrite). Reservations read all three
/// headers; `update-tables` transactions rewrite one — the read-write
/// conflict pattern snapshot isolation tolerates and eager detection
/// cannot.
#[derive(Debug)]
pub struct VacationWorkload {
    params: VacationParams,
    tables: Vec<u64>,
    /// Index-header word per table.
    headers: Vec<Addr>,
    customers_base: Option<u64>,
    n_threads: usize,
}

impl VacationWorkload {
    /// Creates the workload.
    pub fn new(params: VacationParams) -> Self {
        VacationWorkload {
            params,
            tables: Vec::new(),
            headers: Vec::new(),
            customers_base: None,
            n_threads: 1,
        }
    }

    fn record_addr(table_base: u64, record: usize, word: u64) -> Addr {
        Addr((table_base + record as u64) * WORDS_PER_LINE as u64 + word)
    }

    fn customer_addr(base: u64, customer: usize, word: u64) -> Addr {
        Addr((base + customer as u64) * WORDS_PER_LINE as u64 + word)
    }

    /// Invariant check: for every record, `reserved <= total`. Returns
    /// total reservations (post-run verification).
    pub fn check_reservations(&self, mem: &MvmStore) -> Result<Word, String> {
        let mut total = 0;
        for &table in &self.tables {
            for r in 0..self.params.records_per_table {
                let slots = mem.read_word(Self::record_addr(table, r, 0));
                let reserved = mem.read_word(Self::record_addr(table, r, 1));
                if reserved > slots {
                    return Err(format!("record {r} overbooked: {reserved}/{slots}"));
                }
                total += reserved;
            }
        }
        Ok(total)
    }
}

impl Workload for VacationWorkload {
    fn name(&self) -> &str {
        "vacation"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        self.n_threads = n_threads;
        let mut rng = SmallRng::seed_from_u64(0xACA7);
        self.tables = (0..TABLES)
            .map(|_| {
                let base = mem.alloc_lines(self.params.records_per_table as u64).0;
                for r in 0..self.params.records_per_table {
                    mem.write_word(Self::record_addr(base, r, 0), rng.gen_range(50..200));
                    mem.write_word(Self::record_addr(base, r, 1), 0);
                    mem.write_word(Self::record_addr(base, r, 2), rng.gen_range(100..1000));
                }
                base
            })
            .collect();
        self.headers = (0..TABLES)
            .map(|_| {
                let h = mem.alloc_lines(1).first_word();
                mem.write_word(h, 1);
                h
            })
            .collect();
        self.customers_base = Some(mem.alloc_lines(self.params.customers as u64).0);
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        Box::new(VacationThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: crate::registry::fixed_share(self.params.total_txs, tid, self.n_threads),
            tables: self.tables.clone(),
            headers: self.headers.clone(),
            customers_base: self.customers_base.expect("setup must run first"),
            params: self.params,
        })
    }
}

#[derive(Debug)]
struct VacationThread {
    rng: SmallRng,
    remaining: usize,
    tables: Vec<u64>,
    headers: Vec<Addr>,
    customers_base: u64,
    params: VacationParams,
}

impl ThreadWorkload for VacationThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let p = self.rng.gen_range(0..100);
        if p < 80 {
            // Make-reservation: query many records, book the cheapest of
            // each table, update the customer.
            let queries: Vec<(usize, usize)> = (0..self.params.queries_per_tx)
                .map(|_| {
                    (
                        self.rng.gen_range(0..TABLES),
                        self.rng.gen_range(0..self.params.records_per_table),
                    )
                })
                .collect();
            Some(LogicTx::boxed(MakeReservation {
                tables: self.tables.clone(),
                headers: self.headers.clone(),
                customers_base: self.customers_base,
                customer: self.rng.gen_range(0..self.params.customers),
                queries,
            }))
        } else if p < 90 {
            // Delete-customer: read the customer and clear it.
            Some(LogicTx::boxed(DeleteCustomer {
                customers_base: self.customers_base,
                customer: self.rng.gen_range(0..self.params.customers),
            }))
        } else {
            // Update-tables: re-price a handful of records.
            let updates: Vec<(usize, usize, Word)> = (0..4)
                .map(|_| {
                    (
                        self.rng.gen_range(0..TABLES),
                        self.rng.gen_range(0..self.params.records_per_table),
                        self.rng.gen_range(100..1000),
                    )
                })
                .collect();
            Some(LogicTx::boxed(UpdateTables {
                tables: self.tables.clone(),
                header: self.headers[self.rng.gen_range(0..TABLES)],
                updates,
            }))
        }
    }
}

/// The dominant transaction: long read-only query phase, then at most
/// one booking write per table plus the customer update.
#[derive(Debug)]
struct MakeReservation {
    tables: Vec<u64>,
    headers: Vec<Addr>,
    customers_base: u64,
    customer: usize,
    queries: Vec<(usize, usize)>,
}

impl TxLogic for MakeReservation {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        // Index traversal: every lookup starts from the tables' index
        // headers (the tree roots in STAMP's vacation).
        for &h in &self.headers {
            let _generation = mem.read(h)?;
        }
        // Query phase: inspect every queried record (price comparisons
        // and availability checks), remembering the first available
        // record per table. The queried records are uniformly random,
        // so bookings spread across the tables — matching vacation's
        // per-customer item choices rather than a global "cheapest"
        // hotspot.
        let mut chosen: [Option<(usize, Word)>; TABLES] = [None; TABLES];
        for &(table, record) in &self.queries {
            let base = self.tables[table];
            let slots = mem.read(VacationWorkload::record_addr(base, record, 0))?;
            let reserved = mem.read(VacationWorkload::record_addr(base, record, 1))?;
            let price = mem.read(VacationWorkload::record_addr(base, record, 2))?;
            if reserved < slots && chosen[table].is_none() {
                chosen[table] = Some((record, price));
            }
        }
        // Booking phase: reserve the chosen record in each table
        // (vacation books a flight, a room and a car per itinerary).
        let mut spent = 0;
        let mut booked = false;
        for (table, choice) in chosen.iter().enumerate() {
            if let Some((record, price)) = choice {
                let base = self.tables[table];
                let reserved_addr = VacationWorkload::record_addr(base, *record, 1);
                let reserved = mem.read(reserved_addr)?;
                mem.write(reserved_addr, reserved + 1);
                spent += price;
                booked = true;
            }
        }
        if booked {
            let count_addr = VacationWorkload::customer_addr(self.customers_base, self.customer, 0);
            let spent_addr = VacationWorkload::customer_addr(self.customers_base, self.customer, 1);
            let count = mem.read(count_addr)?;
            let prev = mem.read(spent_addr)?;
            mem.write(count_addr, count + 1);
            mem.write(spent_addr, prev + spent);
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        60
    }
}

/// Clears one customer record.
#[derive(Debug)]
struct DeleteCustomer {
    customers_base: u64,
    customer: usize,
}

impl TxLogic for DeleteCustomer {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let count_addr = VacationWorkload::customer_addr(self.customers_base, self.customer, 0);
        let spent_addr = VacationWorkload::customer_addr(self.customers_base, self.customer, 1);
        let count = mem.read(count_addr)?;
        if count > 0 {
            mem.write(count_addr, 0);
            mem.write(spent_addr, 0);
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        15
    }
}

/// Re-prices several records (the administrative update transaction).
#[derive(Debug)]
struct UpdateTables {
    tables: Vec<u64>,
    header: Addr,
    updates: Vec<(usize, usize, Word)>,
}

impl TxLogic for UpdateTables {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        for &(table, record, price) in &self.updates {
            let addr = VacationWorkload::record_addr(self.tables[table], record, 2);
            let _old = mem.read(addr)?;
            mem.write(addr, price);
        }
        // The administrative update rewrites one table's index header
        // (an index rebalance in the tree-backed original).
        let generation = mem.read(self.header)?;
        mem.write(self.header, generation + 1);
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        20
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    fn drive(mem: &mut MvmStore, mut tx: Box<dyn TxProgram>) {
        let mut input = None;
        loop {
            match tx.resume(input.take()) {
                TxOp::Read(a) => input = Some(mem.read_word(a)),
                TxOp::Write(a, v) => mem.write_word(a, v),
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
    }

    #[test]
    fn reservations_never_overbook_sequentially() {
        let mut w = VacationWorkload::new(VacationParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 2);
        while let Some(tx) = tw.next_transaction() {
            drive(&mut mem, tx);
        }
        w.check_reservations(&mem).expect("no overbooking");
    }

    #[test]
    fn reservation_updates_customer() {
        let mut w = VacationWorkload::new(VacationParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        drive(
            &mut mem,
            LogicTx::boxed(MakeReservation {
                tables: w.tables.clone(),
                headers: w.headers.clone(),
                customers_base: w.customers_base.unwrap(),
                customer: 3,
                queries: vec![(0, 1), (1, 2), (2, 3)],
            }),
        );
        let count = mem.read_word(VacationWorkload::customer_addr(
            w.customers_base.unwrap(),
            3,
            0,
        ));
        assert_eq!(count, 1);
        // One booking per table with an available record.
        assert_eq!(w.check_reservations(&mem).unwrap(), TABLES as u64);
    }

    #[test]
    fn delete_customer_clears_state() {
        let mut w = VacationWorkload::new(VacationParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let base = w.customers_base.unwrap();
        mem.write_word(VacationWorkload::customer_addr(base, 5, 0), 2);
        mem.write_word(VacationWorkload::customer_addr(base, 5, 1), 900);
        drive(
            &mut mem,
            LogicTx::boxed(DeleteCustomer {
                customers_base: base,
                customer: 5,
            }),
        );
        assert_eq!(
            mem.read_word(VacationWorkload::customer_addr(base, 5, 0)),
            0
        );
        assert_eq!(
            mem.read_word(VacationWorkload::customer_addr(base, 5, 1)),
            0
        );
    }
}

//! The bayes kernel: structure learning of Bayesian networks.
//!
//! STAMP's bayes performs hill-climbing over candidate network edges:
//! each step evaluates the score delta of adding/removing an edge, which
//! reads a large slice of the shared adjacency structure and sufficient-
//! statistics cache, and — if the candidate is adopted — writes the new
//! edge plus a handful of invalidated score-cache entries. Transactions
//! are few, long and costly to re-execute; about a quarter are pure
//! (read-only) evaluations.
//!
//! The kernel reproduces this: every transaction reads `reads_per_tx`
//! random cells of a shared score table; 75% of transactions then adopt
//! their candidate, writing an adjacency cell and several score-cache
//! invalidations.
//!
//! Expectation (Figures 7/8): SI-TM cuts aborts ~20x over 2PL (long
//! read phases stop being fatal) and scales to ~10x at 32 threads while
//! 2PL and CS flatten beyond 8.

use sitm_mvm::{Addr, MvmStore, Word};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Parameters of the bayes kernel.
#[derive(Debug, Clone, Copy)]
pub struct BayesParams {
    /// Score-table cells (one word each).
    pub score_cells: usize,
    /// Adjacency cells (one word each).
    pub adjacency_cells: usize,
    /// Cells read per evaluation transaction.
    pub reads_per_tx: usize,
    /// Cache cells invalidated per adopted candidate.
    pub writes_per_adopt: usize,
    /// Total transactions across all threads (bayes runs few, long
    /// transactions; fixed input, strong scaling).
    pub total_txs: usize,
}

impl Default for BayesParams {
    fn default() -> Self {
        BayesParams {
            score_cells: 16384,
            adjacency_cells: 4096,
            reads_per_tx: 120,
            writes_per_adopt: 4,
            total_txs: 480,
        }
    }
}

impl BayesParams {
    /// Miniature configuration for fast tests.
    pub fn quick() -> Self {
        BayesParams {
            score_cells: 64,
            adjacency_cells: 32,
            reads_per_tx: 10,
            writes_per_adopt: 2,
            total_txs: 20,
        }
    }
}

/// The bayes workload.
#[derive(Debug)]
pub struct BayesWorkload {
    params: BayesParams,
    scores: Option<Addr>,
    adjacency: Option<Addr>,
    n_threads: usize,
}

impl BayesWorkload {
    /// Creates the workload.
    pub fn new(params: BayesParams) -> Self {
        BayesWorkload {
            params,
            scores: None,
            adjacency: None,
            n_threads: 1,
        }
    }
}

impl Workload for BayesWorkload {
    fn name(&self) -> &str {
        "bayes"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        self.n_threads = n_threads;
        let scores = mem.alloc_words(self.params.score_cells as u64);
        let adjacency = mem.alloc_words(self.params.adjacency_cells as u64);
        let mut rng = SmallRng::seed_from_u64(0xBAE5);
        for i in 0..self.params.score_cells {
            mem.write_word(scores.add(i as u64), rng.gen_range(1..1000));
        }
        self.scores = Some(scores);
        self.adjacency = Some(adjacency);
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        Box::new(BayesThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: crate::registry::fixed_share(self.params.total_txs, tid, self.n_threads),
            scores: self.scores.expect("setup must run first"),
            adjacency: self.adjacency.expect("setup must run first"),
            params: self.params,
        })
    }
}

#[derive(Debug)]
struct BayesThread {
    rng: SmallRng,
    remaining: usize,
    scores: Addr,
    adjacency: Addr,
    params: BayesParams,
}

impl ThreadWorkload for BayesThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let reads: Vec<u64> = (0..self.params.reads_per_tx)
            .map(|_| self.rng.gen_range(0..self.params.score_cells as u64))
            .collect();
        let adopt = if self.rng.gen_range(0..100) < 75 {
            let edge = self.rng.gen_range(0..self.params.adjacency_cells as u64);
            let invalidate: Vec<u64> = (0..self.params.writes_per_adopt)
                .map(|_| self.rng.gen_range(0..self.params.score_cells as u64))
                .collect();
            Some((edge, invalidate))
        } else {
            None
        };
        Some(LogicTx::boxed(EvaluateCandidate {
            scores: self.scores,
            adjacency: self.adjacency,
            reads,
            adopt,
        }))
    }
}

/// One hill-climbing step: long read phase, optional adopt phase.
#[derive(Debug)]
struct EvaluateCandidate {
    scores: Addr,
    adjacency: Addr,
    reads: Vec<u64>,
    adopt: Option<(u64, Vec<u64>)>,
}

impl TxLogic for EvaluateCandidate {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let mut acc: Word = 0;
        for &cell in &self.reads {
            acc = acc.wrapping_add(mem.read(self.scores.add(cell))?);
        }
        if let Some((edge, invalidate)) = &self.adopt {
            let edge_addr = self.adjacency.add(*edge);
            let cur = mem.read(edge_addr)?;
            mem.write(edge_addr, cur.wrapping_add(acc | 1));
            for &cell in invalidate {
                mem.write(self.scores.add(cell), acc.wrapping_mul(31).max(1));
            }
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        // Score evaluation is the application's dominant compute cost.
        500
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    fn drive(mem: &mut MvmStore, mut tx: Box<dyn TxProgram>) -> (usize, usize) {
        let mut input = None;
        let (mut reads, mut writes) = (0, 0);
        loop {
            match tx.resume(input.take()) {
                TxOp::Read(a) => {
                    reads += 1;
                    input = Some(mem.read_word(a));
                }
                TxOp::Write(a, v) => {
                    writes += 1;
                    mem.write_word(a, v);
                }
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
        (reads, writes)
    }

    #[test]
    fn transactions_are_long_and_read_heavy() {
        let mut w = BayesWorkload::new(BayesParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 4);
        let mut total_reads = 0;
        let mut total_writes = 0;
        let mut txs = 0;
        while let Some(tx) = tw.next_transaction() {
            let (r, wr) = drive(&mut mem, tx);
            total_reads += r;
            total_writes += wr;
            txs += 1;
        }
        assert_eq!(txs, BayesParams::quick().total_txs);
        assert!(
            total_reads >= total_writes * 3,
            "read-heavy: {total_reads} reads vs {total_writes} writes"
        );
    }

    #[test]
    fn adopting_transactions_write_adjacency() {
        let mut w = BayesWorkload::new(BayesParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let (_, writes) = drive(
            &mut mem,
            LogicTx::boxed(EvaluateCandidate {
                scores: w.scores.unwrap(),
                adjacency: w.adjacency.unwrap(),
                reads: vec![0, 1, 2],
                adopt: Some((3, vec![4, 5])),
            }),
        );
        assert_eq!(writes, 3, "edge + two invalidations");
        assert_ne!(mem.read_word(w.adjacency.unwrap().add(3)), 0);
    }

    #[test]
    fn read_only_evaluations_write_nothing() {
        let mut w = BayesWorkload::new(BayesParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let (_, writes) = drive(
            &mut mem,
            LogicTx::boxed(EvaluateCandidate {
                scores: w.scores.unwrap(),
                adjacency: w.adjacency.unwrap(),
                reads: vec![0, 1],
                adopt: None,
            }),
        );
        assert_eq!(writes, 0);
    }
}

//! STAMP-like application kernels (section 6.2 of the paper).
//!
//! The paper evaluates seven applications from the STAMP benchmark
//! suite. Reproducing the full applications (genome assembly, Bayesian
//! structure learning, ...) would bury the transactional behaviour under
//! sequential code that does not affect TM results; what drives abort
//! rates is the *shape* of each application's transactions — read/write
//! set sizes, transaction length, contention structure, and the fraction
//! of read-only transactions. Each kernel here reproduces that shape,
//! implemented against real shared data structures in simulated memory,
//! with a module-level note recording the published characteristics it
//! mimics:
//!
//! | kernel | transaction shape | expectation from the paper |
//! |---|---|---|
//! | [`genome`] | hash-set dedup inserts + segment-chain reads | CS and SI both reduce aborts, on par (3.8x speedup) |
//! | [`intruder`] | queue pop + per-flow list insert/drain | SI reduces aborts ~50x over 2PL, ~40x over CS |
//! | [`kmeans`] | short read-modify-write bursts on shared centers | all three systems similar |
//! | [`labyrinth`] | huge private-path transactions, rare overlap | low aborts everywhere |
//! | [`ssca2`] | tiny adjacency-append transactions on a big graph | low aborts (<5%) everywhere |
//! | [`vacation`] | long read-heavy reservation lookups + few writes | SI <1% of 2PL aborts, linear scaling |
//! | [`bayes`] | few, long, costly transactions, 25% read-only | SI ~20x fewer aborts, ~10x speedup |

pub mod bayes;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;

pub use bayes::{BayesParams, BayesWorkload};
pub use genome::{GenomeParams, GenomeWorkload};
pub use intruder::{IntruderParams, IntruderWorkload};
pub use kmeans::{KmeansParams, KmeansWorkload};
pub use labyrinth::{LabyrinthParams, LabyrinthWorkload};
pub use ssca2::{Ssca2Params, Ssca2Workload};
pub use vacation::{VacationParams, VacationWorkload};

//! The labyrinth kernel: transactional path routing in a 3D grid.
//!
//! STAMP's labyrinth routes wires through a shared three-dimensional
//! grid (Lee's algorithm): each transaction reads a large region of the
//! grid while searching, then claims the cells of its chosen path.
//! Transactions are huge (hundreds of accesses) but overlap rarely on a
//! large grid, so absolute abort rates are low for every system; the
//! interesting property is that the enormous read/write sets overflow
//! bounded version buffers, which SI-TM tolerates.
//!
//! The kernel routes rectilinear x-then-y-then-z paths between random
//! endpoints: the transaction reads every cell along the candidate path
//! (plus a halo of neighbour probes, modelling the breadth-first
//! expansion), aborts its claim in software if a cell is occupied
//! (restarting with different endpoints is the application's job; here
//! occupied cells simply end the claim), and writes its id into the free
//! path cells.
//!
//! Expectation (Figures 7/8): low abort rates and similar scaling for
//! 2PL, SONTM, and SI-TM.

use sitm_mvm::{Addr, MvmStore, Word};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Parameters of the labyrinth kernel.
#[derive(Debug, Clone, Copy)]
pub struct LabyrinthParams {
    /// Grid side length (the grid is `side^3` cells, one word each).
    pub side: usize,
    /// Total routing transactions across all threads (fixed input,
    /// strong scaling).
    pub total_txs: usize,
}

impl Default for LabyrinthParams {
    fn default() -> Self {
        LabyrinthParams {
            side: 24,
            total_txs: 640,
        }
    }
}

impl LabyrinthParams {
    /// Miniature configuration for fast tests.
    pub fn quick() -> Self {
        LabyrinthParams {
            side: 8,
            total_txs: 20,
        }
    }
}

/// The labyrinth workload: a `side^3` grid of cells (0 = free, otherwise
/// the id of the claiming route).
#[derive(Debug)]
pub struct LabyrinthWorkload {
    params: LabyrinthParams,
    base: Option<Addr>,
    n_threads: usize,
}

impl LabyrinthWorkload {
    /// Creates the workload.
    pub fn new(params: LabyrinthParams) -> Self {
        LabyrinthWorkload {
            params,
            base: None,
            n_threads: 1,
        }
    }

    fn cell_addr(base: Addr, side: usize, x: usize, y: usize, z: usize) -> Addr {
        Addr(base.0 + ((z * side + y) * side + x) as u64)
    }
}

impl Workload for LabyrinthWorkload {
    fn name(&self) -> &str {
        "labyrinth"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        self.n_threads = n_threads;
        let cells = (self.params.side * self.params.side * self.params.side) as u64;
        let base = mem.alloc_words(cells);
        self.base = Some(base);
        // Grid starts free (zero); nothing to initialize thanks to lazy
        // zero lines.
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        Box::new(LabyrinthThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: crate::registry::fixed_share(self.params.total_txs, tid, self.n_threads),
            base: self.base.expect("setup must run first"),
            side: self.params.side,
            route_id: (tid as Word) << 32 | 1,
        })
    }
}

#[derive(Debug)]
struct LabyrinthThread {
    rng: SmallRng,
    remaining: usize,
    base: Addr,
    side: usize,
    route_id: Word,
}

impl ThreadWorkload for LabyrinthThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let s = self.side;
        let from = (
            self.rng.gen_range(0..s),
            self.rng.gen_range(0..s),
            self.rng.gen_range(0..s),
        );
        let to = (
            self.rng.gen_range(0..s),
            self.rng.gen_range(0..s),
            self.rng.gen_range(0..s),
        );
        let id = self.route_id;
        self.route_id += 1;
        Some(LogicTx::boxed(RouteTx {
            base: self.base,
            side: s,
            from,
            to,
            route_id: id,
        }))
    }
}

/// One routing transaction: probe the rectilinear path and claim its
/// free cells.
#[derive(Debug)]
struct RouteTx {
    base: Addr,
    side: usize,
    from: (usize, usize, usize),
    to: (usize, usize, usize),
    route_id: Word,
}

impl RouteTx {
    /// The x-then-y-then-z rectilinear path between the endpoints.
    fn path(&self) -> Vec<(usize, usize, usize)> {
        let (mut x, mut y, mut z) = self.from;
        let mut cells = vec![(x, y, z)];
        while x != self.to.0 {
            x = if x < self.to.0 { x + 1 } else { x - 1 };
            cells.push((x, y, z));
        }
        while y != self.to.1 {
            y = if y < self.to.1 { y + 1 } else { y - 1 };
            cells.push((x, y, z));
        }
        while z != self.to.2 {
            z = if z < self.to.2 { z + 1 } else { z - 1 };
            cells.push((x, y, z));
        }
        cells
    }
}

impl TxLogic for RouteTx {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let path = self.path();
        // Expansion phase: read the path cells plus neighbour probes.
        let mut free = true;
        for &(x, y, z) in &path {
            let v = mem.read(LabyrinthWorkload::cell_addr(self.base, self.side, x, y, z))?;
            if v != 0 {
                free = false;
            }
            // Neighbour probe (the BFS halo): one adjacent cell.
            if x + 1 < self.side {
                let _ = mem.read(LabyrinthWorkload::cell_addr(
                    self.base,
                    self.side,
                    x + 1,
                    y,
                    z,
                ))?;
            }
        }
        // Claim phase: only fully free paths are claimed (occupied paths
        // fall through as read-only transactions; the application would
        // re-plan).
        if free {
            for &(x, y, z) in &path {
                mem.write(
                    LabyrinthWorkload::cell_addr(self.base, self.side, x, y, z),
                    self.route_id,
                );
            }
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        200 // Lee-style expansion is compute-heavy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    fn drive(mem: &mut MvmStore, mut tx: Box<dyn TxProgram>) {
        let mut input = None;
        loop {
            match tx.resume(input.take()) {
                TxOp::Read(a) => input = Some(mem.read_word(a)),
                TxOp::Write(a, v) => mem.write_word(a, v),
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
    }

    #[test]
    fn path_is_contiguous_and_reaches_target() {
        let tx = RouteTx {
            base: Addr(0),
            side: 8,
            from: (1, 2, 3),
            to: (5, 0, 7),
            route_id: 1,
        };
        let path = tx.path();
        assert_eq!(*path.first().unwrap(), (1, 2, 3));
        assert_eq!(*path.last().unwrap(), (5, 0, 7));
        for pair in path.windows(2) {
            let d = (pair[0].0 as i64 - pair[1].0 as i64).abs()
                + (pair[0].1 as i64 - pair[1].1 as i64).abs()
                + (pair[0].2 as i64 - pair[1].2 as i64).abs();
            assert_eq!(d, 1, "path moves one cell at a time");
        }
    }

    #[test]
    fn free_path_is_claimed_occupied_is_not() {
        let mut w = LabyrinthWorkload::new(LabyrinthParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let base = w.base.unwrap();
        let tx = RouteTx {
            base,
            side: 8,
            from: (0, 0, 0),
            to: (3, 0, 0),
            route_id: 42,
        };
        drive(&mut mem, Box::new(LogicTx::new(tx)));
        for x in 0..=3 {
            assert_eq!(
                mem.read_word(LabyrinthWorkload::cell_addr(base, 8, x, 0, 0)),
                42
            );
        }
        // A crossing route finds an occupied cell and claims nothing.
        let tx2 = RouteTx {
            base,
            side: 8,
            from: (2, 2, 0),
            to: (2, 0, 0), // crosses (2,0,0) which is taken
            route_id: 43,
        };
        drive(&mut mem, Box::new(LogicTx::new(tx2)));
        assert_eq!(
            mem.read_word(LabyrinthWorkload::cell_addr(base, 8, 2, 2, 0)),
            0,
            "occupied path left unclaimed"
        );
    }

    #[test]
    fn threads_complete_their_quota() {
        let mut w = LabyrinthWorkload::new(LabyrinthParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 2);
        let mut tw = w.thread_workload(1, 9);
        let mut n = 0;
        while let Some(tx) = tw.next_transaction() {
            drive(&mut mem, tx);
            n += 1;
        }
        // Thread 1 of 2 gets its share of the fixed total.
        assert_eq!(
            n,
            crate::registry::fixed_share(LabyrinthParams::quick().total_txs, 1, 2)
        );
    }
}

//! The kmeans kernel: iterative clustering with shared center updates.
//!
//! STAMP's kmeans assigns points to clusters outside transactions, then
//! transactionally accumulates each point into its cluster's center:
//! a short burst of read-modify-write operations on the center's
//! coordinate sums and count. Every accessed word is in both the read
//! and the write set, so *every* conflict is (also) a write-write
//! conflict — neither conflict serializability nor snapshot isolation
//! can forgive it.
//!
//! The kernel reproduces this directly: each transaction picks a cluster
//! (uniformly across a small K) and read-modify-writes `dims` words of
//! its center line plus the membership count. Following STAMP's layout,
//! the membership counts live in a *compact array* (eight counters per
//! cache line), so transactions on different clusters still collide at
//! line granularity on the counter line — the false-sharing-plus-RMW
//! pattern that makes kmeans hostile to every conflict-detection
//! scheme.
//!
//! Expectation (Figures 7/8): 2PL, SONTM and SI-TM all show similar
//! abort rates and performance here — the case SI explicitly does not
//! claim to improve.

use sitm_mvm::{Addr, MvmConfig, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Parameters of the kmeans kernel.
#[derive(Debug, Clone, Copy)]
pub struct KmeansParams {
    /// Number of cluster centers (STAMP's simulated configs use ~16).
    pub clusters: usize,
    /// Coordinates accumulated per update (capped at one line minus the
    /// count word).
    pub dims: usize,
    /// Total transactions across all threads (fixed input, strong
    /// scaling).
    pub total_txs: usize,
}

impl Default for KmeansParams {
    fn default() -> Self {
        KmeansParams {
            clusters: 16,
            dims: 4,
            total_txs: 2560,
        }
    }
}

impl KmeansParams {
    /// Miniature configuration for fast tests.
    pub fn quick() -> Self {
        KmeansParams {
            clusters: 4,
            dims: 2,
            total_txs: 40,
        }
    }
}

/// The kmeans workload. Each center's coordinate sums occupy one line
/// (words `0..dims`); the membership counts live in a separate compact
/// array starting at `counts_base`.
#[derive(Debug)]
pub struct KmeansWorkload {
    params: KmeansParams,
    base: Option<u64>,
    counts_base: Option<Addr>,
    n_threads: usize,
}

impl KmeansWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `dims + 1` exceeds the line size.
    pub fn new(params: KmeansParams) -> Self {
        assert!(params.dims <= WORDS_PER_LINE, "center must fit a line");
        KmeansWorkload {
            params,
            base: None,
            counts_base: None,
            n_threads: 1,
        }
    }

    fn center_addr(base: u64, cluster: usize, word: usize) -> Addr {
        Addr((base + cluster as u64) * WORDS_PER_LINE as u64 + word as u64)
    }

    /// Address of `cluster`'s membership counter in the compact array.
    fn count_addr(counts_base: Addr, cluster: usize) -> Addr {
        counts_base.add(cluster as u64)
    }

    /// Total membership count across centers (post-run verification).
    pub fn total_count(mem: &MvmStore, counts_base: Addr, params: KmeansParams) -> Word {
        (0..params.clusters)
            .map(|c| mem.read_word(Self::count_addr(counts_base, c)))
            .sum()
    }
}

impl Workload for KmeansWorkload {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        self.n_threads = n_threads;
        let base = mem.alloc_lines(self.params.clusters as u64).0;
        for c in 0..self.params.clusters {
            for w in 0..self.params.dims {
                mem.write_word(Self::center_addr(base, c, w), 0);
            }
        }
        // Compact counter array: eight counters per line (STAMP's
        // new_centers_len layout).
        let counts_base = mem.alloc_words(self.params.clusters as u64);
        for c in 0..self.params.clusters {
            mem.write_word(Self::count_addr(counts_base, c), 0);
        }
        self.base = Some(base);
        self.counts_base = Some(counts_base);
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        Box::new(KmeansThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: crate::registry::fixed_share(self.params.total_txs, tid, self.n_threads),
            base: self.base.expect("setup must run first"),
            counts_base: self.counts_base.expect("setup must run first"),
            params: self.params,
        })
    }
}

/// Allows the harness to read back where the centers live.
impl KmeansWorkload {
    /// Base line of the center array (after setup).
    pub fn base(&self) -> u64 {
        self.base.expect("setup must run first")
    }

    /// Base address of the compact counter array (after setup).
    pub fn counts_base(&self) -> Addr {
        self.counts_base.expect("setup must run first")
    }

    /// The MVM configuration has no influence here; helper retained for
    /// symmetry with other workloads.
    pub fn mvm_config() -> MvmConfig {
        MvmConfig::default()
    }
}

#[derive(Debug)]
struct KmeansThread {
    rng: SmallRng,
    remaining: usize,
    base: u64,
    counts_base: Addr,
    params: KmeansParams,
}

impl ThreadWorkload for KmeansThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let cluster = self.rng.gen_range(0..self.params.clusters);
        let point: Vec<Word> = (0..self.params.dims)
            .map(|_| self.rng.gen_range(0..100))
            .collect();
        Some(LogicTx::boxed(AccumulatePoint {
            base: self.base,
            counts_base: self.counts_base,
            cluster,
            dims: self.params.dims,
            point,
        }))
    }
}

/// One point accumulation: RMW of the center's sums and count.
#[derive(Debug)]
struct AccumulatePoint {
    base: u64,
    counts_base: Addr,
    cluster: usize,
    dims: usize,
    point: Vec<Word>,
}

impl TxLogic for AccumulatePoint {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let _ = self.dims;
        for (d, &coord) in self.point.iter().enumerate() {
            let a = KmeansWorkload::center_addr(self.base, self.cluster, d);
            let sum = mem.read(a)?;
            mem.write(a, sum.wrapping_add(coord));
        }
        let count_addr = KmeansWorkload::count_addr(self.counts_base, self.cluster);
        let count = mem.read(count_addr)?;
        mem.write(count_addr, count + 1);
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        // The nearest-center distance computation happens *outside* the
        // transaction in STAMP; the transaction itself is just the RMW
        // burst.
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    #[test]
    fn accumulation_is_rmw_on_one_center() {
        let mut w = KmeansWorkload::new(KmeansParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tx = LogicTx::new(AccumulatePoint {
            base: w.base(),
            counts_base: w.counts_base(),
            cluster: 1,
            dims: 2,
            point: vec![10, 20],
        });
        let mut input = None;
        let mut writes = 0;
        loop {
            match tx.resume(input.take()) {
                TxOp::Read(a) => input = Some(mem.read_word(a)),
                TxOp::Write(a, v) => {
                    mem.write_word(a, v);
                    writes += 1;
                }
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
        assert_eq!(writes, 3, "two sums + count");
        assert_eq!(
            mem.read_word(KmeansWorkload::center_addr(w.base(), 1, 0)),
            10
        );
        assert_eq!(
            mem.read_word(KmeansWorkload::count_addr(w.counts_base(), 1)),
            1
        );
    }

    #[test]
    fn total_count_matches_transactions_run() {
        let mut w = KmeansWorkload::new(KmeansParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 5);
        let mut n = 0;
        while let Some(mut tx) = tw.next_transaction() {
            let mut input = None;
            loop {
                match tx.resume(input.take()) {
                    TxOp::Read(a) => input = Some(mem.read_word(a)),
                    TxOp::Write(a, v) => mem.write_word(a, v),
                    TxOp::Compute(_) | TxOp::Promote(_) => {}
                    TxOp::Commit => break,
                    TxOp::Restart => panic!("consistent driver cannot diverge"),
                }
            }
            n += 1;
        }
        assert_eq!(
            KmeansWorkload::total_count(&mem, w.counts_base(), KmeansParams::quick()),
            n
        );
    }

    #[test]
    #[should_panic(expected = "must fit a line")]
    fn oversized_dims_rejected() {
        KmeansWorkload::new(KmeansParams {
            dims: WORDS_PER_LINE + 1,
            ..KmeansParams::quick()
        });
    }
}

//! The intruder kernel: signature-based network intrusion detection.
//!
//! STAMP's intruder pulls packet fragments from a shared work queue and
//! reassembles them into per-flow structures (a dictionary of lists),
//! occasionally draining a completed flow for detection. Its
//! transactions exist purely to access shared data structures — a queue
//! and a map of lists — which the paper notes "perform well under SI":
//! list traversals are read-heavy with a single-writer tail, so 2PL and
//! even CS abort frequently where SI sees only rare write-write
//! conflicts on the queue head and on adjacent list nodes.
//!
//! The kernel reproduces this as: pop a fragment id from a shared
//! circular queue (an RMW on the head counter — the residual write-write
//! contention), then insert the fragment into its flow's sorted list
//! (traversal + one-node splice, reusing the list logic); every few
//! fragments a flow completes and the transaction also resets the flow's
//! header (an extra write).
//!
//! Expectation (Figure 7): at 32 threads SI-TM reduces aborts by ~50x
//! over 2PL and ~40x over CS.

use sitm_mvm::{Addr, MvmStore, Word, WORDS_PER_LINE};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};

use crate::list::{ListOp, ListOpKind};
use crate::txm::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Parameters of the intruder kernel.
#[derive(Debug, Clone, Copy)]
pub struct IntruderParams {
    /// Number of flows (each with its own fragment list).
    pub flows: usize,
    /// Fragments per flow before it "completes".
    pub fragments_per_flow: u64,
    /// Total transactions across all threads (fixed input, strong
    /// scaling).
    pub total_txs: usize,
}

impl Default for IntruderParams {
    fn default() -> Self {
        IntruderParams {
            flows: 16,
            fragments_per_flow: 96,
            total_txs: 1920,
        }
    }
}

impl IntruderParams {
    /// Miniature configuration for fast tests.
    pub fn quick() -> Self {
        IntruderParams {
            flows: 8,
            fragments_per_flow: 4,
            total_txs: 40,
        }
    }
}

/// The intruder workload.
///
/// Layout: one line for the queue head counter; `flows` sentinel list
/// heads (one line each, list layout as in [`crate::list`]); a node pool
/// for fragment inserts.
#[derive(Debug)]
pub struct IntruderWorkload {
    params: IntruderParams,
    queue_head: Option<Addr>,
    flow_heads: Vec<u64>,
    pool: Vec<u64>,
    n_threads: usize,
}

impl IntruderWorkload {
    /// Creates the workload.
    pub fn new(params: IntruderParams) -> Self {
        IntruderWorkload {
            params,
            queue_head: None,
            flow_heads: Vec::new(),
            pool: Vec::new(),
            n_threads: 1,
        }
    }
}

impl Workload for IntruderWorkload {
    fn name(&self) -> &str {
        "intruder"
    }

    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
        self.n_threads = n_threads;
        let queue_head = mem.alloc_lines(1).first_word();
        mem.write_word(queue_head, 0);
        self.queue_head = Some(queue_head);
        self.flow_heads = (0..self.params.flows)
            .map(|_| {
                let head = mem.alloc_lines(1).0;
                mem.write_word(Addr(head * WORDS_PER_LINE as u64), 0);
                mem.write_word(Addr(head * WORDS_PER_LINE as u64 + 1), crate::list::NULL);
                head
            })
            .collect();
        self.pool = (0..self.params.total_txs)
            .map(|_| mem.alloc_lines(1).0)
            .collect();
    }

    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        // Hand each thread its share of the fixed node pool.
        let start: usize = (0..tid)
            .map(|t| crate::registry::fixed_share(self.params.total_txs, t, self.n_threads))
            .sum();
        let share = crate::registry::fixed_share(self.params.total_txs, tid, self.n_threads);
        Box::new(IntruderThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: share,
            queue_head: self.queue_head.expect("setup must run first"),
            flow_heads: self.flow_heads.clone(),
            pool: self.pool[start..start + share].to_vec(),
            params: self.params,
        })
    }
}

#[derive(Debug)]
struct IntruderThread {
    rng: SmallRng,
    remaining: usize,
    queue_head: Addr,
    flow_heads: Vec<u64>,
    pool: Vec<u64>,
    params: IntruderParams,
}

impl ThreadWorkload for IntruderThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // STAMP's intruder runs the queue pop and the reassembly insert
        // as *separate* transactions; a packet pop feeds several
        // fragment inserts, so pops are a small minority of the mix —
        // the paper attributes intruder's behaviour to its list/tree
        // accesses, not the queue counter.
        if self.remaining % 8 == 7 {
            Some(LogicTx::boxed(PopFragment {
                queue_head: self.queue_head,
            }))
        } else {
            let flow = self.rng.gen_range(0..self.flow_heads.len());
            let fragment = self.rng.gen_range(1..=self.params.fragments_per_flow * 4);
            Some(LogicTx::boxed(InsertFragment {
                flow_head: self.flow_heads[flow],
                fragment,
                new_node: self.pool.pop().expect("pool sized to tx count"),
                complete_at: self.params.fragments_per_flow,
            }))
        }
    }
}

/// The dequeue transaction: a tiny RMW on the shared head counter —
/// intruder's residual write-write contention point.
#[derive(Debug)]
struct PopFragment {
    queue_head: Addr,
}

impl TxLogic for PopFragment {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let head = mem.read(self.queue_head)?;
        mem.write(self.queue_head, head + 1);
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        5
    }
}

/// The reassembly transaction: insert the fragment into its flow's
/// sorted list; a completing fragment also touches the flow header.
#[derive(Debug)]
struct InsertFragment {
    flow_head: u64,
    fragment: Word,
    new_node: u64,
    complete_at: u64,
}

impl TxLogic for InsertFragment {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        // Insert the fragment into the flow's sorted list (duplicate
        // fragments are dropped by the insert logic).
        let insert = ListOp {
            head_line: self.flow_head,
            target: self.fragment,
            kind: ListOpKind::Insert {
                new_node: self.new_node,
            },
        };
        insert.run(mem)?;
        // Flow completion check: an insert that completes the flow also
        // updates the flow header's sequence word (models handing the
        // assembled flow to detection).
        if self.fragment % self.complete_at == self.complete_at - 1 {
            let header = Addr(self.flow_head * WORDS_PER_LINE as u64);
            let seq = mem.read(header)?;
            mem.write(header, seq + 1);
        }
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        25
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::TxOp;

    fn drive(mem: &mut MvmStore, mut tx: Box<dyn TxProgram>) {
        let mut input = None;
        loop {
            match tx.resume(input.take()) {
                TxOp::Read(a) => input = Some(mem.read_word(a)),
                TxOp::Write(a, v) => mem.write_word(a, v),
                TxOp::Compute(_) | TxOp::Promote(_) => {}
                TxOp::Commit => break,
                TxOp::Restart => panic!("consistent driver cannot diverge"),
            }
        }
    }

    #[test]
    fn fragments_land_in_flow_lists_and_queue_advances() {
        let mut w = IntruderWorkload::new(IntruderParams::quick());
        let mut mem = MvmStore::new();
        w.setup(&mut mem, 1);
        let mut tw = w.thread_workload(0, 11);
        let mut n = 0;
        while let Some(tx) = tw.next_transaction() {
            drive(&mut mem, tx);
            n += 1;
        }
        assert_eq!(n, IntruderParams::quick().total_txs);
        // Queue head advanced once per pop transaction (an eighth of
        // the mix).
        assert_eq!(mem.read_word(w.queue_head.unwrap()), n as Word / 8);
        // Flow lists are sorted and duplicate-free.
        let mut total = 0;
        for &head in &w.flow_heads {
            let values = crate::list::ListWorkload::snapshot_values(&mem, head);
            assert!(values.windows(2).all(|p| p[0] < p[1]), "sorted unique");
            total += values.len();
        }
        assert!(total > 0, "some fragments inserted");
    }
}

//! The transaction machine: write workload algorithms as ordinary Rust,
//! run them as resumable op-level programs.
//!
//! The discrete-event engine requires transactions to be resumable state
//! machines ([`sitm_sim::TxProgram`]), but data-structure algorithms
//! (tree rebalancing, list splicing, hash probing) are far more natural
//! as straight-line code. [`LogicTx`] bridges the two with a
//! *replay-on-miss* scheme:
//!
//! * The algorithm is a [`TxLogic`]: a deterministic function over a
//!   [`TxMemory`], reading with [`TxMemory::read`] (which fails with
//!   [`NeedRead`] on the first access to each address) and writing with
//!   [`TxMemory::write`].
//! * When a read misses, the program yields a [`TxOp::Read`] to the
//!   engine; the returned value is cached and the logic re-runs from the
//!   top. Values are stable within a transaction (snapshot or buffered),
//!   so replay is sound; each distinct address costs one simulated
//!   memory access, and replays model the "already in registers/L1"
//!   reality of re-touched data.
//! * When the logic completes, the buffered writes are emitted in first-
//!   write order, followed by `Commit`.
//!
//! Writes are visible to subsequent reads of the same run through the
//! overlay, giving read-own-writes semantics identical to the protocol
//! models'.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use sitm_mvm::{Addr, Word};
use sitm_sim::{TxOp, TxProgram};

/// "The logic needs the value at this address before it can continue."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeedRead(pub Addr);

/// Sentinel address signalling that the logic exceeded its read budget —
/// it is running on an inconsistent ("zombie") view and must restart.
/// Only single-version lazy protocols (SONTM) can produce such views;
/// snapshot protocols always feed consistent values.
pub const DIVERGED: Addr = Addr(u64::MAX);

/// Base read-call budget per logic run; the effective budget grows
/// quadratically with the distinct-address footprint, matching the
/// replay-on-miss cost of honest transactions (one full re-run per
/// distinct address). A zombie loop keeps issuing reads without growing
/// its footprint and trips the bound quickly.
const READ_BUDGET_BASE: u64 = 10_000;

/// Deterministic multiply-then-fold hasher for [`Addr`] keys.
///
/// `TxMemory::read` is the hottest call in the whole simulator (replay-
/// on-miss re-reads the full footprint once per distinct address, so an
/// N-address transaction issues O(N²) reads), and the default SipHash is
/// most of its cost. Addresses need no DoS resistance — they are small,
/// simulator-generated integers — so a single multiply by a 64-bit odd
/// constant plus a fold of the high half (addresses are word-aligned,
/// leaving plain-multiply low bits degenerate) replaces it. The hash is
/// fixed across runs, which if anything *strengthens* determinism: map
/// iteration order is only ever observed after sorting.
#[derive(Debug, Default)]
struct AddrHasher(u64);

impl Hasher for AddrHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Unused by `Addr` keys (which hash as one `u64`); kept correct
        // for completeness via a byte-wise FNV-1a fold.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Address-keyed map with the cheap deterministic hasher above.
type AddrMap = HashMap<Addr, Word, BuildHasherDefault<AddrHasher>>;

/// The transactional view an algorithm runs against: values read so far
/// this attempt plus the local write overlay.
#[derive(Debug, Default)]
pub struct TxMemory {
    cache: AddrMap,
    overlay: AddrMap,
    write_order: Vec<Addr>,
    read_calls: u64,
}

impl TxMemory {
    /// Reads `addr`, failing with [`NeedRead`] if its value has not been
    /// fetched yet this attempt.
    ///
    /// # Errors
    ///
    /// Returns [`NeedRead`] on the first access to each address; the
    /// driver fetches the value and replays the logic.
    pub fn read(&mut self, addr: Addr) -> Result<Word, NeedRead> {
        self.read_calls += 1;
        let footprint = (self.cache.len() + self.overlay.len()) as u64;
        if self.read_calls > READ_BUDGET_BASE + 20 * footprint * footprint {
            // Zombie sandbox: force the driver to restart the
            // transaction rather than loop forever on a torn view.
            return Err(NeedRead(DIVERGED));
        }
        // The overlay is empty for read-only logic and for the read
        // phase of most updates; skip its probe entirely then.
        if !self.overlay.is_empty() {
            if let Some(&v) = self.overlay.get(&addr) {
                return Ok(v);
            }
        }
        if let Some(&v) = self.cache.get(&addr) {
            return Ok(v);
        }
        Err(NeedRead(addr))
    }

    /// Buffers a write of `addr = value`, visible to subsequent reads of
    /// this attempt.
    pub fn write(&mut self, addr: Addr, value: Word) {
        if !self.overlay.contains_key(&addr) {
            self.write_order.push(addr);
        }
        self.overlay.insert(addr, value);
    }

    /// Number of distinct addresses written so far.
    pub fn writes(&self) -> usize {
        self.write_order.len()
    }

    fn supply(&mut self, addr: Addr, value: Word) {
        self.cache.insert(addr, value);
    }

    /// Supplies a read value from outside the engine (initialization
    /// helpers that drive logic directly against a store).
    pub fn supply_public(&mut self, addr: Addr, value: Word) {
        self.supply(addr, value);
    }

    /// Removes and returns the buffered writes in first-write order
    /// (initialization helpers apply them directly to a store).
    pub fn drain_writes(&mut self) -> Vec<(Addr, Word)> {
        let order = std::mem::take(&mut self.write_order);
        order.into_iter().map(|a| (a, self.overlay[&a])).collect()
    }

    /// Discards the write overlay, keeping the read cache. Must be
    /// called before every re-run of the logic: the algorithm re-issues
    /// all of its writes from scratch, so stale overlay values from a
    /// previous partial run would otherwise feed back into
    /// read-modify-write sequences.
    pub fn begin_attempt(&mut self) {
        self.overlay.clear();
        self.write_order.clear();
        self.read_calls = 0;
    }

    fn clear(&mut self) {
        self.cache.clear();
        self.overlay.clear();
        self.write_order.clear();
    }
}

/// A deterministic transactional algorithm, re-executed from the top
/// after every fetched read until it completes.
///
/// Implementations must be deterministic given the values in the
/// [`TxMemory`]: any randomness must be fixed at construction time.
/// `Send` is required so [`LogicTx`] satisfies `TxProgram: Send` and
/// whole cells can migrate onto sweep worker threads.
pub trait TxLogic: Send {
    /// Runs (or re-runs) the algorithm.
    ///
    /// # Errors
    ///
    /// Propagates [`NeedRead`] from [`TxMemory::read`] (use `?`).
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead>;

    /// Extra cycles of local computation to charge once at commit time
    /// (models the non-memory work between accesses).
    fn compute_cycles(&self) -> u64 {
        0
    }

    /// Whether every read should be *promoted* at commit (section 5.1):
    /// promoted reads join the write set for conflict detection without
    /// creating versions. Enable for update operations on structures
    /// whose invariants span multiple nodes (the paper's red-black tree
    /// fix); leave off for read-only and single-location logic.
    fn promote_reads(&self) -> bool {
        false
    }
}

/// Driver state: what the program does next.
#[derive(Debug)]
enum Stage {
    /// Running the logic; if `waiting` the last emitted op was a read of
    /// that address.
    Running { waiting: Option<Addr> },
    /// Logic complete; draining buffered writes starting at this index,
    /// then promotions.
    Draining {
        next: usize,
        charged_compute: bool,
        promotions: Vec<Addr>,
        next_promotion: usize,
    },
}

/// Adapts a [`TxLogic`] into a [`TxProgram`].
pub struct LogicTx<L> {
    logic: L,
    mem: TxMemory,
    stage: Stage,
}

impl<L: std::fmt::Debug> std::fmt::Debug for LogicTx<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogicTx")
            .field("logic", &self.logic)
            .finish_non_exhaustive()
    }
}

impl<L: TxLogic> LogicTx<L> {
    /// Wraps `logic` as a resumable transaction program.
    pub fn new(logic: L) -> Self {
        LogicTx {
            logic,
            mem: TxMemory::default(),
            stage: Stage::Running { waiting: None },
        }
    }

    /// Boxed convenience for workload factories.
    pub fn boxed(logic: L) -> Box<dyn TxProgram>
    where
        L: 'static,
    {
        Box::new(Self::new(logic))
    }
}

impl<L: TxLogic> TxProgram for LogicTx<L> {
    fn resume(&mut self, input: Option<Word>) -> TxOp {
        loop {
            match &mut self.stage {
                Stage::Running { waiting } => {
                    if let Some(addr) = waiting.take() {
                        let value = input.expect("engine must supply the read value");
                        self.mem.supply(addr, value);
                    }
                    self.mem.begin_attempt();
                    match self.logic.run(&mut self.mem) {
                        Err(NeedRead(addr)) if addr == DIVERGED => {
                            // The engine aborts and resets us.
                            return TxOp::Restart;
                        }
                        Err(NeedRead(addr)) => {
                            self.stage = Stage::Running {
                                waiting: Some(addr),
                            };
                            return TxOp::Read(addr);
                        }
                        Ok(()) => {
                            let promotions =
                                if self.logic.promote_reads() && !self.mem.overlay.is_empty() {
                                    // Promote reads of addresses not written
                                    // (written lines validate anyway).
                                    let mut p: Vec<Addr> = self
                                        .mem
                                        .cache
                                        .keys()
                                        .filter(|a| !self.mem.overlay.contains_key(a))
                                        .copied()
                                        .collect();
                                    p.sort_unstable();
                                    p
                                } else {
                                    Vec::new()
                                };
                            self.stage = Stage::Draining {
                                next: 0,
                                charged_compute: false,
                                promotions,
                                next_promotion: 0,
                            };
                        }
                    }
                }
                Stage::Draining {
                    next,
                    charged_compute,
                    promotions,
                    next_promotion,
                } => {
                    if !*charged_compute {
                        *charged_compute = true;
                        let cycles = self.logic.compute_cycles();
                        if cycles > 0 {
                            return TxOp::Compute(cycles);
                        }
                        continue;
                    }
                    if let Some(&addr) = self.mem.write_order.get(*next) {
                        *next += 1;
                        let value = self.mem.overlay[&addr];
                        return TxOp::Write(addr, value);
                    }
                    if let Some(&addr) = promotions.get(*next_promotion) {
                        *next_promotion += 1;
                        return TxOp::Promote(addr);
                    }
                    return TxOp::Commit;
                }
            }
        }
    }

    fn reset(&mut self) {
        self.mem.clear();
        self.stage = Stage::Running { waiting: None };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Increment a counter and mirror it: read a, write a+1, write b=a+1.
    #[derive(Debug)]
    struct IncMirror {
        a: Addr,
        b: Addr,
    }

    impl TxLogic for IncMirror {
        fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
            let v = mem.read(self.a)?;
            mem.write(self.a, v + 1);
            mem.write(self.b, v + 1);
            // Read-own-write must be visible.
            assert_eq!(mem.read(self.a)?, v + 1);
            Ok(())
        }

        fn compute_cycles(&self) -> u64 {
            7
        }
    }

    #[test]
    fn logic_tx_emits_read_compute_writes_commit() {
        let mut p = LogicTx::new(IncMirror {
            a: Addr(0),
            b: Addr(8),
        });
        assert_eq!(p.resume(None), TxOp::Read(Addr(0)));
        assert_eq!(p.resume(Some(41)), TxOp::Compute(7));
        assert_eq!(p.resume(None), TxOp::Write(Addr(0), 42));
        assert_eq!(p.resume(None), TxOp::Write(Addr(8), 42));
        assert_eq!(p.resume(None), TxOp::Commit);
    }

    #[test]
    fn reset_replays_with_fresh_values() {
        let mut p = LogicTx::new(IncMirror {
            a: Addr(0),
            b: Addr(8),
        });
        assert_eq!(p.resume(None), TxOp::Read(Addr(0)));
        let _ = p.resume(Some(1));
        p.reset();
        assert_eq!(p.resume(None), TxOp::Read(Addr(0)));
        assert_eq!(p.resume(Some(100)), TxOp::Compute(7));
        assert_eq!(p.resume(None), TxOp::Write(Addr(0), 101));
    }

    /// A data-dependent chain: follow pointers until zero.
    #[derive(Debug)]
    struct ChainWalk {
        start: Addr,
        sink: Addr,
    }

    impl TxLogic for ChainWalk {
        fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
            let mut hops = 0;
            let mut cur = self.start;
            loop {
                let next = mem.read(cur)?;
                if next == 0 {
                    break;
                }
                hops += 1;
                cur = Addr(next);
            }
            mem.write(self.sink, hops);
            Ok(())
        }
    }

    #[test]
    fn data_dependent_reads_resolve_one_by_one() {
        let mut p = LogicTx::new(ChainWalk {
            start: Addr(0),
            sink: Addr(64),
        });
        assert_eq!(p.resume(None), TxOp::Read(Addr(0)));
        assert_eq!(p.resume(Some(8)), TxOp::Read(Addr(8)));
        assert_eq!(p.resume(Some(16)), TxOp::Read(Addr(16)));
        assert_eq!(p.resume(Some(0)), TxOp::Write(Addr(64), 2));
        assert_eq!(p.resume(None), TxOp::Commit);
    }

    #[test]
    fn double_write_keeps_first_order_and_last_value() {
        #[derive(Debug)]
        struct TwoWrites;
        impl TxLogic for TwoWrites {
            fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
                mem.write(Addr(3), 1);
                mem.write(Addr(4), 2);
                mem.write(Addr(3), 9);
                Ok(())
            }
        }
        let mut p = LogicTx::new(TwoWrites);
        assert_eq!(p.resume(None), TxOp::Write(Addr(3), 9));
        assert_eq!(p.resume(None), TxOp::Write(Addr(4), 2));
        assert_eq!(p.resume(None), TxOp::Commit);
    }
}

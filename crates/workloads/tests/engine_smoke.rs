//! End-to-end smoke tests: every workload terminates under every
//! protocol, committed state is consistent, and SI-TM's abort profile
//! dominates 2PL's.

use sitm_core::{SiTm, Sontm, SsiTm, TwoPl};
use sitm_sim::{run_simulation, MachineConfig, RunStats, Workload};
use sitm_workloads::{all_workloads, Scale};

fn machine(cores: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_cores(cores);
    cfg.max_cycles = 500_000_000;
    cfg
}

fn run_protocol(name: &str, workload: &mut dyn Workload, cfg: &MachineConfig) -> RunStats {
    match name {
        "SI-TM" => run_simulation(SiTm::new(cfg), workload, cfg, 42),
        "SSI-TM" => run_simulation(SsiTm::new(cfg), workload, cfg, 42),
        "2PL" => run_simulation(TwoPl::new(cfg), workload, cfg, 42),
        "SONTM" => run_simulation(Sontm::new(cfg), workload, cfg, 42),
        other => panic!("unknown protocol {other}"),
    }
}

#[test]
fn every_workload_terminates_under_every_protocol() {
    let cfg = machine(4);
    for proto in ["SI-TM", "SSI-TM", "2PL", "SONTM"] {
        for mut w in all_workloads(Scale::Quick) {
            let stats = run_protocol(proto, w.as_mut(), &cfg);
            assert!(
                !stats.truncated,
                "{proto}/{} hit the cycle ceiling: {}",
                stats.workload,
                stats.summary()
            );
            assert!(
                stats.commits() > 0,
                "{proto}/{} committed nothing",
                stats.workload
            );
        }
    }
}

#[test]
fn si_never_aborts_read_only_and_never_on_read_write() {
    let cfg = machine(8);
    for mut w in all_workloads(Scale::Quick) {
        let stats = run_protocol("SI-TM", w.as_mut(), &cfg);
        use sitm_sim::AbortCause;
        assert_eq!(
            stats.aborts_by(AbortCause::ReadWrite),
            0,
            "SI-TM must not abort on read-write conflicts ({})",
            stats.workload
        );
    }
}

//! Golden-file round-trip for the JSONL run-report schema: the
//! checked-in `tests/golden/run_report.jsonl` must parse to known
//! reports, and re-serializing those reports must reproduce the file
//! byte for byte. A failure here means the schema changed — bump
//! `SCHEMA` and regenerate the golden file deliberately.

use sitm_obs::RunReport;

fn golden_reports() -> Vec<RunReport> {
    let mut full = RunReport::new("fig7_abort_rates", "SI-TM", "array");
    full.threads = 16;
    full.seeds = 3;
    full.commits = 2400;
    full.aborts.insert("write-write".into(), 120);
    full.aborts.insert("version-overflow".into(), 3);
    full.abort_rate = 0.048_78;
    full.throughput = 1.625;
    full.total_cycles = 1_476_923;
    full.truncated = false;
    full.phase_cycles.insert("read".into(), 900_000);
    full.phase_cycles.insert("commit".into(), 200_000);
    full.phase_cycles.insert("backoff".into(), 376_923);
    full.version_depth = [5130, 590, 41, 7, 1, 2];
    full.extra.insert("rate_rel_2pl".into(), 0.19);
    full.counters.insert("mvm.gc.reclaimed".into(), 64);

    let mut truncated = RunReport::new("ablate_backoff/off", "2PL", "genome");
    truncated.threads = 32;
    truncated.seeds = 1;
    truncated.commits = 0;
    truncated.aborts.insert("read-write".into(), 18_000);
    truncated.abort_rate = 1.0;
    truncated.throughput = 0.0;
    truncated.total_cycles = 50_000_000;
    truncated.truncated = true;

    vec![full, truncated]
}

fn golden_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/run_report.jsonl");
    std::fs::read_to_string(path).expect("golden file present")
}

/// Regenerates the golden file after a deliberate schema change:
/// `cargo test -p sitm-obs --test golden_report -- --ignored`.
#[test]
#[ignore = "regenerates the golden file; run explicitly after schema changes"]
fn regenerate_golden_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/run_report.jsonl");
    let mut text = golden_reports()
        .iter()
        .map(RunReport::to_json_line)
        .collect::<Vec<_>>()
        .join("\n");
    text.push('\n');
    std::fs::write(path, text).expect("golden file written");
}

#[test]
fn golden_file_parses_to_known_reports() {
    let parsed = RunReport::from_jsonl(&golden_text()).expect("golden file parses");
    assert_eq!(parsed, golden_reports());
}

#[test]
fn serialization_reproduces_golden_file_exactly() {
    let mut lines: Vec<String> = golden_reports()
        .iter()
        .map(RunReport::to_json_line)
        .collect();
    lines.push(String::new()); // trailing newline
    assert_eq!(lines.join("\n"), golden_text());
}

#[test]
fn golden_reports_survive_a_round_trip() {
    for report in golden_reports() {
        let line = report.to_json_line();
        let back = RunReport::from_json_line(&line).expect("round-trip parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json_line(), line, "serialization is a fixed point");
    }
}

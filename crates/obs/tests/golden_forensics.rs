//! Golden files for the two forensic export formats:
//!
//! * `tests/golden/chrome_trace.json` — the Chrome trace-event JSON
//!   array the [`sitm_obs::chrome_trace`] exporter renders from a fixed
//!   synthetic transaction-lifecycle trace;
//! * `tests/golden/abort_forensics.jsonl` — `sitm.abort_forensics.v1`
//!   records rendered from fixed [`ForensicsSnapshot`]s.
//!
//! Both exports are pure functions of always-compiled types, so these
//! tests run (and must pass) with and without the `trace` feature. On
//! an intentional format change regenerate with `SITM_UPDATE_GOLDEN=1
//! cargo test -p sitm-obs --test golden_forensics` and review the diff.

use std::path::Path;

use sitm_obs::forensics::TopK;
use sitm_obs::{
    chrome_trace, EventKind, ForensicCause, ForensicEvent, ForensicsReport, ForensicsSnapshot,
    Histogram, TraceRecord,
};

/// A fixed two-thread lifecycle trace: thread 0 commits, thread 1
/// aborts on a write-write conflict at line 0x40, thread 0's second
/// attempt is left open (no span).
fn golden_trace() -> Vec<TraceRecord> {
    let rec = |at, thread, kind| TraceRecord { at, thread, kind };
    vec![
        rec(10, 0, EventKind::Begin(3)),
        rec(12, 1, EventKind::Begin(4)),
        rec(20, 0, EventKind::Read(0x40)),
        rec(20, 0, EventKind::ReadSetGrowth(1)),
        rec(25, 1, EventKind::Write(0x40)),
        rec(30, 0, EventKind::Write(0x80)),
        rec(40, 0, EventKind::CommitAcquire(2)),
        rec(55, 0, EventKind::Install(7)),
        rec(55, 0, EventKind::Commit),
        rec(60, 1, EventKind::CommitAcquire(1)),
        rec(70, 1, EventKind::Validate(15)),
        rec(70, 1, EventKind::Abort(1)),
        rec(70, 1, EventKind::AbortLine(0x40)),
        rec(90, 0, EventKind::Begin(8)),
        rec(95, TraceRecord::NO_THREAD, EventKind::MvmGc(3)),
    ]
}

/// Two fixed forensics records: a contended SI-TM cell and an empty
/// 2PL cell (zero aborts, vacuously fully attributed).
fn golden_reports() -> Vec<ForensicsReport> {
    let mut hot = ForensicsSnapshot::default();
    {
        // Build deterministically through the same TopK/merge machinery
        // the recorders use.
        let mut sketch = TopK::default();
        for _ in 0..3 {
            sketch.record(0x40);
        }
        sketch.record(0x80);
        hot.hot_lines = sketch.entries();
    }
    hot.by_cause[ForensicCause::WriteWriteFcw.index()] = 3;
    hot.by_cause[ForensicCause::CapacityEviction.index()] = 1;
    hot.total = 4;
    hot.attributed = 4;
    // Conflict ages matching the recorded events below: three aborts
    // whose winner committed at 7 against snapshot 5 (age 2), one whose
    // winner committed at 260 against snapshot 4 (age 256).
    let mut age = Histogram::new();
    for sample in [2, 2, 2, 256] {
        age.record(sample);
    }
    hot.conflict_age = age;

    vec![
        ForensicsReport {
            bench: "abort_forensics".into(),
            protocol: "SI-TM".into(),
            workload: "array".into(),
            threads: 16,
            seeds: 3,
            snapshot: hot,
        },
        ForensicsReport {
            bench: "abort_forensics".into(),
            protocol: "2PL".into(),
            workload: "ssca2".into(),
            threads: 16,
            seeds: 3,
            snapshot: ForensicsSnapshot::default(),
        },
    ]
}

fn check_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"));
    if std::env::var_os("SITM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; run once with SITM_UPDATE_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "{name} drifted from its golden file; regenerate with SITM_UPDATE_GOLDEN=1 \
         only for a deliberate format change and review the diff"
    );
}

#[test]
fn chrome_export_matches_golden() {
    let mut rendered = chrome_trace(&golden_trace());
    rendered.push('\n');
    check_golden("chrome_trace.json", &rendered);
}

#[test]
fn forensics_jsonl_matches_golden() {
    let mut rendered = String::new();
    for report in golden_reports() {
        rendered.push_str(&report.to_json_line());
        rendered.push('\n');
    }
    check_golden("abort_forensics.jsonl", &rendered);
}

#[test]
fn forensics_jsonl_round_trips_through_the_parser() {
    for report in golden_reports() {
        let line = report.to_json_line();
        let back = ForensicsReport::from_json_line(&line).expect("round-trip parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json_line(), line, "serialization is a fixed point");
    }
}

#[test]
fn recording_forensics_matches_the_handwritten_snapshot() {
    // The owned recorder (when compiled in) reproduces the first golden
    // snapshot from its constituent events — tying the golden file to
    // the real recording path, not just the serializer.
    let mut forensics = sitm_obs::Forensics::new();
    for _ in 0..3 {
        forensics.record(
            ForensicCause::WriteWriteFcw,
            ForensicEvent {
                line: Some(0x40),
                winner_ts: Some(7),
                snapshot_ts: Some(5),
            },
        );
    }
    forensics.record(
        ForensicCause::CapacityEviction,
        ForensicEvent {
            line: Some(0x80),
            winner_ts: Some(260),
            snapshot_ts: Some(4),
        },
    );
    let snapshot = forensics.snapshot();
    if sitm_obs::Forensics::enabled() {
        assert_eq!(snapshot, golden_reports()[0].snapshot);
    } else {
        assert_eq!(snapshot, ForensicsSnapshot::default());
    }
}

//! `sitm-obs`: the unified observability layer for the SI-TM
//! reproduction.
//!
//! This crate is deliberately dependency-free (the build environment is
//! hermetic) and sits at the bottom of the workspace graph so every
//! other crate can use it:
//!
//! - [`trace`] — per-thread fixed-capacity ring-buffer event tracers
//!   recording the [`event`] taxonomy, compiled to zero-sized no-ops
//!   unless the `trace` cargo feature is enabled.
//! - [`metrics`] — named counters, gauges and log2-bucketed histograms
//!   behind one [`metrics::MetricsRegistry`], the lock-free
//!   [`metrics::AtomicHistogram`] for hot paths recorded from many
//!   threads, plus the [`metrics::Observable`] trait every protocol
//!   model implements.
//! - [`phase`] — the phase-cycle taxonomy the simulator charges virtual
//!   cycles to (begin / read / write / compute / validate / commit /
//!   backoff / stall).
//! - [`report`] — the versioned `sitm.run_report.v1` JSONL schema every
//!   bench binary emits via `--json`, built on the in-tree [`json`]
//!   module.
//! - [`sink`] — the thread-safe, cell-ordered JSONL aggregator used by
//!   the bench harness's parallel sweep executor (`--jobs N`).
//! - [`rng`] — a small deterministic xoshiro256++ PRNG (the workspace
//!   previously pulled `rand` for this; the hermetic build cannot).
//! - [`history`] — the per-transaction execution-history schema the
//!   isolation oracle (`sitm-check`) consumes, with bounded in-memory
//!   logging and `sitm.txn.v1` JSONL export.
//! - [`cases`] — the seeded-case driver shared by the randomized tests
//!   (env-tunable case count, failing seed always printed).
//! - [`forensics`] — structured abort attribution: the
//!   [`forensics::ForensicCause`] taxonomy, top-K hot-line sketches and
//!   conflict-age histograms, compiled out behind the `trace` feature,
//!   exported as `sitm.abort_forensics.v1` JSONL.
//! - [`chrome`] — a `chrome://tracing` JSON-array exporter for merged
//!   trace streams, reconstructing transaction-lifecycle spans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cases;
pub mod chrome;
pub mod event;
pub mod forensics;
pub mod history;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod report;
pub mod rng;
pub mod sink;
pub mod trace;

pub use cases::{run_seeded_cases, test_cases, CASES_ENV};
pub use chrome::chrome_trace;
pub use event::{EventKind, TraceRecord};
pub use forensics::{
    ForensicCause, ForensicEvent, Forensics, ForensicsReport, ForensicsSnapshot, SharedForensics,
};
pub use history::{History, HistoryOp, OpKind, TxnBuilder, TxnOutcome, TxnRecord};
pub use json::Json;
pub use metrics::{AtomicHistogram, Histogram, MetricsRegistry, Observable};
pub use phase::{Phase, PhaseCycles};
pub use report::{ReportError, RunReport};
pub use rng::SmallRng;
pub use sink::JsonlSink;
pub use trace::{merge_traces, Tracer};

//! Phase-cycle profiling: attributing virtual cycles to the stages of a
//! transaction's life.
//!
//! The simulator charges every cycle it hands out to exactly one
//! [`Phase`], producing a per-thread [`PhaseCycles`] profile that shows
//! *where* a protocol spends its time — begin-timestamp acquisition,
//! snapshot reads, write buffering, commit validation, write-back,
//! abort backoff, or commit-reservation stalls. This is the profile the
//! ROADMAP's optimization work needs: you cannot tune coalescing or
//! backoff without knowing which phase dominates.

use std::fmt;
use std::ops::{Index, IndexMut};

/// One stage of a transaction's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Obtaining the begin timestamp / starting the transaction.
    Begin,
    /// Transactional reads (including version-list walks).
    Read,
    /// Transactional writes and promotions.
    Write,
    /// Non-memory computation inside the transaction body.
    Compute,
    /// Failed validation and rollback work (cycles spent on attempts
    /// that ended in an abort, measured at the aborting operation).
    Validate,
    /// Successful commit work (validation + write-back of an attempt
    /// that committed).
    Commit,
    /// Post-abort exponential backoff.
    Backoff,
    /// Stalling to begin (commit-reservation window exhausted).
    Stall,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 8] = [
        Phase::Begin,
        Phase::Read,
        Phase::Write,
        Phase::Compute,
        Phase::Validate,
        Phase::Commit,
        Phase::Backoff,
        Phase::Stall,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            Phase::Begin => 0,
            Phase::Read => 1,
            Phase::Write => 2,
            Phase::Compute => 3,
            Phase::Validate => 4,
            Phase::Commit => 5,
            Phase::Backoff => 6,
            Phase::Stall => 7,
        }
    }

    /// Stable lowercase label (used in the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Begin => "begin",
            Phase::Read => "read",
            Phase::Write => "write",
            Phase::Compute => "compute",
            Phase::Validate => "validate",
            Phase::Commit => "commit",
            Phase::Backoff => "backoff",
            Phase::Stall => "stall",
        }
    }

    /// Parses a label written by [`Phase::label`].
    pub fn from_label(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == s)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles attributed to each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    cycles: [u64; Phase::ALL.len()],
}

impl PhaseCycles {
    /// An all-zero profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `phase`.
    pub fn charge(&mut self, phase: Phase, cycles: u64) {
        self.cycles[phase.index()] += cycles;
    }

    /// Total cycles across phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &PhaseCycles) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
    }

    /// The fraction of total cycles spent in `phase` (0.0 when empty).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self[phase] as f64 / total as f64
        }
    }

    /// `(phase, cycles)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.into_iter().map(|p| (p, self[p]))
    }
}

impl Index<Phase> for PhaseCycles {
    type Output = u64;
    fn index(&self, phase: Phase) -> &u64 {
        &self.cycles[phase.index()]
    }
}

impl IndexMut<Phase> for PhaseCycles {
    fn index_mut(&mut self, phase: Phase) -> &mut u64 {
        &mut self.cycles[phase.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_labels_roundtrip() {
        let mut seen = [false; Phase::ALL.len()];
        for p in Phase::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(Phase::from_label("bogus"), None);
    }

    #[test]
    fn charge_total_share_merge() {
        let mut pc = PhaseCycles::new();
        pc.charge(Phase::Read, 30);
        pc.charge(Phase::Commit, 10);
        assert_eq!(pc.total(), 40);
        assert!((pc.share(Phase::Read) - 0.75).abs() < 1e-12);
        assert_eq!(pc.share(Phase::Stall), 0.0);

        let mut other = PhaseCycles::new();
        other.charge(Phase::Read, 10);
        pc.merge(&other);
        assert_eq!(pc[Phase::Read], 40);
        assert_eq!(PhaseCycles::new().share(Phase::Read), 0.0);
    }
}

//! Thread-safe, order-preserving aggregation of [`RunReport`] JSONL
//! lines.
//!
//! The bench harness executes sweep cells on worker OS threads (see
//! `sitm-bench`'s `SweepRunner`), and every cell may contribute a
//! report. [`JsonlSink`] lets any number of threads append concurrently
//! through a shared reference while guaranteeing that the final JSONL
//! document is ordered by the caller-supplied *cell order*, never by
//! completion order — so `--json` output is byte-identical regardless
//! of how many jobs executed the sweep.

use crate::report::RunReport;
use std::sync::Mutex;

/// A concurrent collector of serialized [`RunReport`] lines.
///
/// Lines are sorted by `(order, insertion sequence)` when the document
/// is assembled: reports pushed with [`JsonlSink::push`] from a single
/// coordinating thread keep their push order, while workers racing on
/// [`JsonlSink::push_ordered`] land at their cell's deterministic
/// position no matter which finishes first.
///
/// # Examples
///
/// ```
/// use sitm_obs::{JsonlSink, RunReport};
/// let sink = JsonlSink::new();
/// std::thread::scope(|s| {
///     for i in (0..4u64).rev() {
///         let sink = &sink;
///         s.spawn(move || {
///             let mut r = RunReport::new("demo", "SI-TM", "array");
///             r.threads = i;
///             sink.push_ordered(i, &r);
///         });
///     }
/// });
/// let doc = sink.into_jsonl();
/// let lines: Vec<&str> = doc.lines().collect();
/// assert_eq!(lines.len(), 4);
/// assert!(lines[0].contains("\"threads\":0"));
/// assert!(lines[3].contains("\"threads\":3"));
/// ```
#[derive(Debug, Default)]
pub struct JsonlSink {
    /// `(order key, insertion sequence, serialized line)`.
    lines: Mutex<Vec<(u64, u64, String)>>,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Appends `report` with an order key equal to its insertion
    /// sequence (use from a single coordinating thread).
    pub fn push(&self, report: &RunReport) {
        let mut lines = self.lines.lock().expect("report sink poisoned");
        let seq = lines.len() as u64;
        lines.push((seq, seq, report.to_json_line()));
    }

    /// Appends `report` at the deterministic position `order` (use from
    /// sweep workers; ties keep insertion order).
    pub fn push_ordered(&self, order: u64, report: &RunReport) {
        let mut lines = self.lines.lock().expect("report sink poisoned");
        let seq = lines.len() as u64;
        lines.push((order, seq, report.to_json_line()));
    }

    /// Number of collected reports.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("report sink poisoned").len()
    }

    /// Whether no report has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assembles the final JSONL document: lines sorted by order key,
    /// one per line, with a trailing newline when non-empty.
    pub fn into_jsonl(self) -> String {
        let mut lines = self.lines.into_inner().expect("report sink poisoned");
        lines.sort_by_key(|&(order, seq, _)| (order, seq));
        let mut text = lines
            .into_iter()
            .map(|(_, _, l)| l)
            .collect::<Vec<_>>()
            .join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_insertion_order() {
        let sink = JsonlSink::new();
        for name in ["a", "b", "c"] {
            sink.push(&RunReport::new(name, "-", "-"));
        }
        let doc = sink.into_jsonl();
        for (want, line) in ["a", "b", "c"].iter().zip(doc.lines()) {
            assert!(line.contains(&format!("\"bench\":\"{want}\"")), "{line}");
        }
        assert_eq!(doc.lines().count(), 3);
    }

    #[test]
    fn push_ordered_sorts_by_key_not_arrival() {
        let sink = JsonlSink::new();
        sink.push_ordered(2, &RunReport::new("late", "-", "-"));
        sink.push_ordered(0, &RunReport::new("early", "-", "-"));
        sink.push_ordered(1, &RunReport::new("mid", "-", "-"));
        let doc = sink.into_jsonl();
        let order: Vec<bool> = ["early", "mid", "late"]
            .iter()
            .zip(doc.lines())
            .map(|(want, line)| line.contains(want))
            .collect();
        assert_eq!(order, vec![true, true, true]);
    }

    #[test]
    fn empty_sink_produces_empty_document() {
        let sink = JsonlSink::new();
        assert!(sink.is_empty());
        assert_eq!(sink.into_jsonl(), "");
    }

    #[test]
    fn concurrent_pushes_land_at_their_cell_position() {
        let sink = JsonlSink::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let sink = &sink;
                s.spawn(move || {
                    let mut r = RunReport::new("cell", "-", "-");
                    r.threads = i;
                    sink.push_ordered(i, &r);
                });
            }
        });
        assert_eq!(sink.len(), 8);
        for (i, line) in sink.into_jsonl().lines().enumerate() {
            assert!(line.contains(&format!("\"threads\":{i}")), "{line}");
        }
    }
}

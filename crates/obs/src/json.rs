//! A minimal JSON value, writer and parser.
//!
//! The hermetic build environment has no serde, so the JSONL export
//! schema is served by this ~200-line implementation. It supports the
//! full JSON data model except exotic number forms (numbers parse as
//! `f64`; integers up to 2^53 round-trip exactly, which covers every
//! counter this repository emits), and it writes deterministically:
//! object keys keep insertion order, floats use Rust's shortest
//! round-trippable formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), making output
    /// deterministic regardless of insertion order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    // Integral: write without the trailing ".0" so
                    // counters look like counters.
                    fmt::Write::write_fmt(out, format_args!("{}", *n as i64)).unwrap();
                } else if n.is_finite() {
                    // Shortest round-trippable float form.
                    fmt::Write::write_fmt(out, format_args!("{n:?}")).unwrap();
                } else {
                    // JSON has no NaN/Inf; emit null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32)).unwrap()
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // schema; replace lone surrogates.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slices
                    // at char boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let ch_len = utf8_len(s[0]);
                    let chunk =
                        std::str::from_utf8(&s[..ch_len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-3", Json::Num(-3.0)),
            ("0.125", Json::Num(0.125)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
            assert_eq!(Json::parse(&v.to_line()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_document_roundtrips() {
        let doc = Json::obj([
            ("name", Json::Str("SI-TM".into())),
            ("threads", Json::Num(32.0)),
            ("rate", Json::Num(0.0123)),
            ("truncated", Json::Bool(false)),
            (
                "depths",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(0.0)]),
            ),
            ("nested", Json::obj([("k", Json::Null)])),
        ]);
        let line = doc.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}f — λ".into());
        let line = s.to_line();
        assert_eq!(Json::parse(&line).unwrap(), s);
        assert_eq!(
            Json::parse("\"\\u0041\\u03bb\"").unwrap(),
            Json::Str("Aλ".into())
        );
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": "x", "c": [true], "d": 1.5}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(
            doc.get("c").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(doc.get("d").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("d").unwrap().as_u64(), None, "non-integral");
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let doc = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}

//! Named counters and log2-bucketed histograms.
//!
//! The registry is the single interface behind which per-protocol and
//! per-substrate statistics live: the engine's thread stats, the MVM's
//! version-depth census and install accounting, and the software STM's
//! event counts all export into one [`MetricsRegistry`], which the
//! JSONL [`crate::report::RunReport`] serializes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram over `u64` samples with logarithmic buckets: bucket `i`
/// counts samples whose value `v` satisfies `floor(log2(v)) == i - 1`,
/// with bucket 0 reserved for `v == 0`. Equivalently: bucket 0 holds 0,
/// bucket 1 holds 1, bucket 2 holds 2..=3, bucket 3 holds 4..=7, and so
/// on — 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for `value`: 0 for 0, else `ilog2(value) + 1`.
    pub fn bucket_of(value: u64) -> u32 {
        match value {
            0 => 0,
            v => v.ilog2() + 1,
        }
    }

    /// The half-open sample range `[lo, hi)` a bucket covers (`hi` is
    /// saturating at `u64::MAX` for the top bucket).
    pub fn bucket_range(bucket: u32) -> (u64, u64) {
        match bucket {
            0 => (0, 1),
            b => (1u64 << (b - 1), 1u64.checked_shl(b).unwrap_or(u64::MAX)),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(Self::bucket_of(value)).or_insert(0) += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `bucket`.
    pub fn count_in(&self, bucket: u32) -> u64 {
        self.counts.get(&bucket).copied().unwrap_or(0)
    }

    /// Non-empty `(bucket, count)` pairs in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&b, &c)| (b, c))
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (&b, &c) in &other.counts {
            *self.counts.entry(b).or_insert(0) += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The histogram as a JSON object:
    /// `{"buckets": [[bucket, count], ...], "sum": s, "max": m}`.
    /// Buckets appear in ascending order (deterministic). `sum` is
    /// exact as long as it fits in 2^53 (JSON numbers are `f64`), which
    /// covers every histogram this repository emits.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let buckets = self
            .buckets()
            .map(|(b, c)| Json::Arr(vec![Json::Num(b as f64), Json::Num(c as f64)]))
            .collect();
        Json::obj([
            ("buckets", Json::Arr(buckets)),
            ("sum", Json::Num(self.sum as f64)),
            ("max", Json::Num(self.max as f64)),
        ])
    }

    /// Parses a [`Histogram::to_json`] object back. `total` is
    /// recomputed from the bucket counts; returns `None` on any
    /// malformed field.
    pub fn from_json(v: &crate::json::Json) -> Option<Histogram> {
        use crate::json::Json;
        let mut h = Histogram {
            sum: v.get("sum")?.as_u64()? as u128,
            max: v.get("max")?.as_u64()?,
            ..Histogram::default()
        };
        let Some(Json::Arr(buckets)) = v.get("buckets") else {
            return None;
        };
        for pair in buckets {
            let Json::Arr(bc) = pair else { return None };
            let bucket = bc.first()?.as_u64()?;
            let count = bc.get(1)?.as_u64()?;
            if bucket >= BUCKETS as u64 {
                return None;
            }
            h.counts.insert(bucket as u32, count);
            h.total += count;
        }
        Some(h)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (b, c) in self.buckets() {
            let (lo, hi) = Self::bucket_range(b);
            writeln!(f, "[{lo:>12}, {hi:>12})  {c}")?;
        }
        write!(
            f,
            "n={} mean={:.2} max={}",
            self.total,
            self.mean(),
            self.max
        )
    }
}

/// Number of log2 buckets covering the whole `u64` domain: bucket 0
/// for zero plus one bucket per bit position.
const BUCKETS: usize = 65;

/// A lock-free counterpart of [`Histogram`]: the same log2 buckets over
/// plain atomics, so many threads can record concurrently (e.g. every
/// committing STM transaction) without serializing through a mutex.
///
/// Reads go through [`AtomicHistogram::snapshot`], which folds the
/// atomics into an ordinary [`Histogram`] — export paths
/// ([`MetricsRegistry::merge_histogram`], JSONL) are therefore
/// byte-identical to the mutex-guarded `Histogram` they replace. A
/// snapshot taken while writers are active is a consistent *lower
/// bound* per bucket, not an atomic cut; take it after the racing
/// threads quiesce when exactness matters.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; safe to call from any thread
    /// through a shared reference.
    pub fn record(&self, value: u64) {
        self.counts[Histogram::bucket_of(value) as usize].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded (sum of all bucket counts).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Folds the current contents into an ordinary [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut counts = BTreeMap::new();
        let mut total = 0u64;
        for (bucket, count) in self.counts.iter().enumerate() {
            let c = count.load(Ordering::Relaxed);
            if c > 0 {
                counts.insert(bucket as u32, c);
                total += c;
            }
        }
        Histogram {
            counts,
            total,
            sum: self.sum.load(Ordering::Relaxed) as u128,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// The registry: named counters and histograms with stable (sorted)
/// iteration order, so exports are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Free-form numeric gauges (averages, ratios) set by exporters.
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets counter `name` to exactly `value`.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name` (creating it when absent).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges an externally maintained histogram into histogram `name`
    /// (creating it when absent).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Sets gauge `name`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry: counters add, histograms merge, gauges
    /// overwrite.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.gauges.is_empty()
    }
}

/// Anything that can export its statistics into a [`MetricsRegistry`]
/// under a name prefix — the one interface all four protocol models
/// (and the MVM store behind them) implement.
pub trait Observable {
    /// Writes this component's metrics into `reg`. Implementations
    /// should namespace their entries (`"mvm.census.depth"`,
    /// `"sitm.commits"`, ...).
    fn export_metrics(&self, reg: &mut MetricsRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every boundary value v = 2^k lands in a fresh bucket and
        // v - 1 lands in the previous one.
        for k in 1..64u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_of(v), k + 1);
            assert_eq!(Histogram::bucket_of(v - 1), k);
        }
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        let mut expected_lo = 0u64;
        for b in 0..=10u32 {
            let (lo, hi) = Histogram::bucket_range(b);
            assert_eq!(
                lo, expected_lo,
                "bucket {b} must start where the last ended"
            );
            assert!(hi > lo);
            expected_lo = hi;
        }
        // A sample equal to a bucket's lo belongs to that bucket.
        for b in 0..=10u32 {
            let (lo, hi) = Histogram::bucket_range(b);
            assert_eq!(Histogram::bucket_of(lo), b);
            if hi != u64::MAX {
                assert_eq!(Histogram::bucket_of(hi - 1), b);
            }
        }
    }

    #[test]
    fn histogram_stats_and_merge() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-12);
        assert_eq!(h.count_in(2), 2); // 2 and 3

        let mut other = Histogram::new();
        other.record(100);
        h.merge(&other);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count_in(Histogram::bucket_of(100)), 2);
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 100, 1 << 40] {
            h.record(v);
        }
        let line = h.to_json().to_line();
        let back = Histogram::from_json(&crate::json::Json::parse(&line).unwrap())
            .expect("round-trip parses");
        assert_eq!(back, h);
        assert_eq!(back.to_json().to_line(), line, "fixed point");
        // Empty histograms round-trip too.
        let empty = Histogram::new();
        let back =
            Histogram::from_json(&crate::json::Json::parse(&empty.to_json().to_line()).unwrap())
                .unwrap();
        assert_eq!(back, empty);
        // Malformed inputs are rejected, not mis-parsed.
        for bad in [
            r#"{"sum":1,"max":1}"#,
            r#"{"buckets":[[99,1]],"sum":1,"max":1}"#,
            r#"{"buckets":[[1]],"sum":1,"max":1}"#,
        ] {
            assert_eq!(
                Histogram::from_json(&crate::json::Json::parse(bad).unwrap()),
                None,
                "{bad}"
            );
        }
    }

    #[test]
    fn atomic_histogram_snapshot_round_trips_through_json() {
        // The satellite contract: edge values land in deterministic
        // buckets and an AtomicHistogram snapshot survives the JSONL
        // export/import path bit-for-bit.
        let atomic = AtomicHistogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, (1 << 20) - 1, 1 << 20, u64::MAX] {
            atomic.record(v);
        }
        let snap = atomic.snapshot();
        // u64::MAX wraps the atomic sum; the snapshot still reports the
        // wrapped value consistently, so only check bucket placement.
        assert_eq!(snap.count_in(0), 1); // 0
        assert_eq!(snap.count_in(1), 1); // 1
        assert_eq!(snap.count_in(2), 2); // 2, 3
        assert_eq!(snap.count_in(3), 2); // 4, 7
        assert_eq!(snap.count_in(4), 1); // 8
        assert_eq!(snap.count_in(20), 1); // 2^20 - 1
        assert_eq!(snap.count_in(21), 1); // 2^20
        assert_eq!(snap.count_in(64), 1); // u64::MAX
        let line = snap.to_json().to_line();
        let back = Histogram::from_json(&crate::json::Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back.total(), snap.total());
        assert_eq!(back.max(), snap.max());
        let counts_match = (0..=64u32).all(|b| back.count_in(b) == snap.count_in(b));
        assert!(counts_match);
    }

    #[test]
    fn atomic_histogram_matches_sequential_histogram() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [0, 1, 2, 3, 7, 100, 1 << 40] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
        assert_eq!(atomic.total(), plain.total());
    }

    #[test]
    fn atomic_histogram_concurrent_records_are_not_lost() {
        let h = AtomicHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.total(), 4000);
        assert_eq!(snap.max(), 3999);
        let bucket_sum: u64 = snap.buckets().map(|(_, c)| c).sum();
        assert_eq!(bucket_sum, 4000);
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.count("commits", 3);
        r.count("commits", 2);
        r.observe("read_set", 17);
        r.gauge("abort_rate", 0.25);
        assert_eq!(r.counter("commits"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.histogram("read_set").unwrap().total(), 1);
        assert_eq!(r.gauge_value("abort_rate"), Some(0.25));

        let mut other = MetricsRegistry::new();
        other.count("commits", 1);
        other.observe("read_set", 1);
        r.merge(&other);
        assert_eq!(r.counter("commits"), 6);
        assert_eq!(r.histogram("read_set").unwrap().total(), 2);
    }
}

//! The transaction-lifecycle event taxonomy.
//!
//! Every observable moment in a run — across all four protocol models
//! and the MVM substrate — is one of these events. The simulator stamps
//! events with virtual cycles; the MVM stamps its internal events
//! (garbage collection, coalescing, overflow) with the commit timestamp
//! that triggered them, since the store has no cycle clock of its own.

/// Why a transaction aborted, as seen by the tracer.
///
/// This mirrors `sitm_sim::AbortCause` but lives here so the tracer has
/// no dependency on the simulator; the two are kept in sync by
/// `sitm-sim` (which converts via `AbortCause::index`).
pub type AbortCauseIndex = u8;

/// One kind of lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction attempt began (payload: start timestamp).
    Begin(u64),
    /// A transactional read of the given address.
    Read(u64),
    /// A transactional write of the given address.
    Write(u64),
    /// A read promotion of the given address.
    Promote(u64),
    /// The attempt aborted (payload: dense abort-cause index).
    Abort(AbortCauseIndex),
    /// The attempt committed.
    Commit,
    /// A begin stalled on commit-reservation exhaustion (payload: cycles
    /// waited before the retry).
    CommitReservationStall(u64),
    /// MVM garbage collection reclaimed versions of a line (payload:
    /// number of versions reclaimed).
    MvmGc(u64),
    /// An MVM install coalesced into the previous newest version instead
    /// of creating a slot (payload: line address).
    MvmCoalesce(u64),
    /// An MVM install hit the version cap (payload: line address). Under
    /// the abort-writer policy the commit fails; under discard-oldest
    /// the oldest version was dropped.
    MvmVersionOverflow(u64),
    /// The attempt's read set grew (payload: new read-set size). Emitted
    /// after each successful transactional read, so the growth curve of
    /// an attempt can be reconstructed from its trace span.
    ReadSetGrowth(u64),
    /// The attempt entered its commit sequence (payload: number of
    /// transactional accesses — reads + writes + promotions — the
    /// attempt performed).
    CommitAcquire(u64),
    /// Commit-time validation failed (payload: cycles charged for the
    /// failed validation and rollback). Emitted just before the `Abort`
    /// event of a commit-time abort.
    Validate(u64),
    /// Commit-time validation passed and the write set was installed
    /// (payload: the commit timestamp, 0 for protocols without one).
    Install(u64),
    /// The line a just-emitted `Abort` was attributed to (payload: line
    /// address). Only emitted when the abort site knows the conflicting
    /// line; pairs with the immediately preceding `Abort` event.
    AbortLine(u64),
}

/// One traced event: who, when, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual-cycle timestamp (or commit timestamp for `Mvm*` events).
    pub at: u64,
    /// Logical thread that produced the event (`u32::MAX` for events not
    /// attributable to one thread, e.g. GC triggered by another commit).
    pub thread: u32,
    /// What happened.
    pub kind: EventKind,
}

impl TraceRecord {
    /// Thread id used for events with no single responsible thread.
    pub const NO_THREAD: u32 = u32::MAX;
}

impl EventKind {
    /// Short stable label (used by exporters and tests).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Begin(_) => "begin",
            EventKind::Read(_) => "read",
            EventKind::Write(_) => "write",
            EventKind::Promote(_) => "promote",
            EventKind::Abort(_) => "abort",
            EventKind::Commit => "commit",
            EventKind::CommitReservationStall(_) => "stall",
            EventKind::MvmGc(_) => "mvm-gc",
            EventKind::MvmCoalesce(_) => "mvm-coalesce",
            EventKind::MvmVersionOverflow(_) => "mvm-version-overflow",
            EventKind::ReadSetGrowth(_) => "read-set-growth",
            EventKind::CommitAcquire(_) => "commit-acquire",
            EventKind::Validate(_) => "validate",
            EventKind::Install(_) => "install",
            EventKind::AbortLine(_) => "abort-line",
        }
    }
}

//! A `chrome://tracing` exporter for merged trace streams.
//!
//! Chrome's trace-event profiling format (also read by Perfetto and
//! `ui.perfetto.dev`) is a JSON array of event objects. This exporter
//! renders a merged [`TraceRecord`] stream (see
//! [`crate::trace::merge_traces`]) into that format:
//!
//! - every record becomes an *instant* event (`"ph": "i"`, thread
//!   scope) named by its [`EventKind::label`], with the payload decoded
//!   into a readable argument (`addr`, `cause`, `start_ts`, ...);
//! - in addition, each transaction attempt — the span from a `Begin` to
//!   the next `Commit` or `Abort` on the same thread — is reconstructed
//!   into a *complete* duration event (`"ph": "X"`, name `"txn"`)
//!   carrying the outcome, so the timeline shows attempt bars with the
//!   lifecycle instants layered on top.
//!
//! Timestamps are virtual cycles reported as microseconds (`"ts"`),
//! which Chrome only uses for relative placement. Output is
//! deterministic: events appear in input order, duration events are
//! emitted at their closing instant, and all JSON comes from the
//! deterministic in-tree [`crate::json::Json`] writer.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceRecord};
use crate::json::Json;

/// Decodes a record's payload into a `(key, value)` argument for the
/// instant event, or `None` for payload-free kinds.
fn event_arg(kind: &EventKind) -> Option<(&'static str, u64)> {
    match *kind {
        EventKind::Begin(ts) => Some(("start_ts", ts)),
        EventKind::Read(addr) | EventKind::Write(addr) | EventKind::Promote(addr) => {
            Some(("addr", addr))
        }
        EventKind::Abort(cause) => Some(("cause", cause as u64)),
        EventKind::Commit => None,
        EventKind::CommitReservationStall(cycles) => Some(("cycles", cycles)),
        EventKind::MvmGc(reclaimed) => Some(("reclaimed", reclaimed)),
        EventKind::MvmCoalesce(line) | EventKind::MvmVersionOverflow(line) => Some(("line", line)),
        EventKind::ReadSetGrowth(size) => Some(("size", size)),
        EventKind::CommitAcquire(accesses) => Some(("accesses", accesses)),
        EventKind::Validate(cycles) => Some(("cycles", cycles)),
        EventKind::Install(commit_ts) => Some(("commit_ts", commit_ts)),
        EventKind::AbortLine(line) => Some(("line", line)),
    }
}

fn instant_event(r: &TraceRecord) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(r.kind.label().to_string())),
        ("ph", Json::Str("i".to_string())),
        ("ts", Json::Num(r.at as f64)),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(r.thread as f64)),
        ("s", Json::Str("t".to_string())),
    ];
    if let Some((key, value)) = event_arg(&r.kind) {
        pairs.push(("args", Json::obj([(key, Json::Num(value as f64))])));
    }
    Json::obj(pairs)
}

fn span_event(thread: u32, begin_at: u64, end: &TraceRecord) -> Json {
    let outcome = match end.kind {
        EventKind::Commit => "commit",
        _ => "abort",
    };
    let mut args = vec![("outcome", Json::Str(outcome.to_string()))];
    if let EventKind::Abort(cause) = end.kind {
        args.push(("cause", Json::Num(cause as f64)));
    }
    Json::obj([
        ("name", Json::Str("txn".to_string())),
        ("ph", Json::Str("X".to_string())),
        ("ts", Json::Num(begin_at as f64)),
        ("dur", Json::Num((end.at - begin_at) as f64)),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(thread as f64)),
        ("args", Json::obj(args)),
    ])
}

/// Renders merged trace records as a Chrome trace-event JSON array.
///
/// The input should already be in global time order (as produced by
/// [`crate::trace::merge_traces`]); open attempts with no closing
/// `Commit`/`Abort` (in-flight when the trace was drained, or whose
/// `Begin` was overwritten by ring wraparound) produce no duration
/// event, only their instants.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut events = Vec::with_capacity(records.len());
    // Open attempt per thread: the `at` of its Begin.
    let mut open: BTreeMap<u32, u64> = BTreeMap::new();
    for r in records {
        match r.kind {
            EventKind::Begin(_) => {
                open.insert(r.thread, r.at);
            }
            EventKind::Commit | EventKind::Abort(_) => {
                if let Some(begin_at) = open.remove(&r.thread) {
                    events.push(span_event(r.thread, begin_at, r));
                }
            }
            _ => {}
        }
        events.push(instant_event(r));
    }
    Json::Arr(events).to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, thread: u32, kind: EventKind) -> TraceRecord {
        TraceRecord { at, thread, kind }
    }

    #[test]
    fn exports_spans_and_instants() {
        let records = vec![
            rec(10, 0, EventKind::Begin(7)),
            rec(12, 0, EventKind::Read(64)),
            rec(12, 0, EventKind::ReadSetGrowth(1)),
            rec(20, 0, EventKind::CommitAcquire(1)),
            rec(25, 0, EventKind::Install(9)),
            rec(25, 0, EventKind::Commit),
        ];
        let out = chrome_trace(&records);
        let doc = Json::parse(&out).expect("exporter emits valid JSON");
        let events = doc.as_arr().expect("top level is an array");
        // 6 instants + 1 duration span.
        assert_eq!(events.len(), 7);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one duration event");
        assert_eq!(span.get("name").unwrap().as_str(), Some("txn"));
        assert_eq!(span.get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(15));
        assert_eq!(
            span.get("args").unwrap().get("outcome").unwrap().as_str(),
            Some("commit")
        );
        // The span is emitted before its closing instant.
        let span_idx = events.iter().position(|e| e == span).unwrap();
        let commit_idx = events
            .iter()
            .position(|e| e.get("name").and_then(Json::as_str) == Some("commit"))
            .unwrap();
        assert!(span_idx < commit_idx);
    }

    #[test]
    fn abort_spans_carry_the_cause() {
        let records = vec![
            rec(5, 3, EventKind::Begin(1)),
            rec(9, 3, EventKind::Validate(4)),
            rec(9, 3, EventKind::Abort(1)),
            rec(9, 3, EventKind::AbortLine(192)),
        ];
        let out = chrome_trace(&records);
        let doc = Json::parse(&out).unwrap();
        let events = doc.as_arr().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(
            span.get("args").unwrap().get("outcome").unwrap().as_str(),
            Some("abort")
        );
        assert_eq!(
            span.get("args").unwrap().get("cause").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(span.get("tid").unwrap().as_u64(), Some(3));
        let line_instant = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("abort-line"))
            .unwrap();
        assert_eq!(
            line_instant
                .get("args")
                .unwrap()
                .get("line")
                .unwrap()
                .as_u64(),
            Some(192)
        );
    }

    #[test]
    fn interleaved_threads_get_independent_spans() {
        let records = vec![
            rec(1, 0, EventKind::Begin(1)),
            rec(2, 1, EventKind::Begin(2)),
            rec(3, 1, EventKind::Commit),
            rec(4, 0, EventKind::Abort(0)),
        ];
        let out = chrome_trace(&records);
        let doc = Json::parse(&out).unwrap();
        let spans: Vec<&Json> = doc
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(spans[0].get("dur").unwrap().as_u64(), Some(1));
        assert_eq!(spans[1].get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(spans[1].get("dur").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn unclosed_or_unopened_attempts_do_not_produce_spans() {
        // A Commit with no Begin (wraparound dropped it) and a Begin
        // with no close (in flight at drain) both degrade gracefully.
        let records = vec![rec(1, 0, EventKind::Commit), rec(2, 0, EventKind::Begin(5))];
        let doc = Json::parse(&chrome_trace(&records)).unwrap();
        assert!(doc
            .as_arr()
            .unwrap()
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("i")));
    }

    #[test]
    fn empty_input_is_an_empty_array() {
        assert_eq!(chrome_trace(&[]), "[]");
    }
}

//! Shared driver for seeded randomized tests.
//!
//! The workspace replaced its external property-testing dependency with
//! plain seeded-RNG case loops (the build environment is hermetic).
//! Every such test wants the same three things: a case count that an
//! environment variable can crank up for soak runs, a deterministic
//! per-case seed, and — crucially — the failing seed printed when a
//! case panics, so the failure reproduces with a one-liner instead of a
//! bisection. [`run_seeded_cases`] packages all three.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::SmallRng;

/// The environment variable the seeded-test helpers consult.
pub const CASES_ENV: &str = "SITM_PROPTEST_CASES";

/// Number of cases a seeded test should run: the value of the `env`
/// variable when set to a positive integer, `default` otherwise.
pub fn test_cases(env: &str, default: u64) -> u64 {
    match std::env::var(env) {
        Ok(v) => v.trim().parse().ok().filter(|&n| n > 0).unwrap_or(default),
        Err(_) => default,
    }
}

/// Runs `case` once per seed in `base_seed..base_seed + cases`, where
/// `cases` comes from [`test_cases`]`(`[`CASES_ENV`]`, default)`. Each
/// case receives its index and an RNG seeded with `base_seed + index`.
/// When a case panics, the failing seed (and how to rerun it) is printed
/// before the panic propagates.
pub fn run_seeded_cases(default: u64, base_seed: u64, mut case: impl FnMut(u64, &mut SmallRng)) {
    let cases = test_cases(CASES_ENV, default);
    for index in 0..cases {
        let seed = base_seed.wrapping_add(index);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| case(index, &mut rng))) {
            eprintln!(
                "seeded case {index}/{cases} failed: seed {seed:#x} \
                 (base {base_seed:#x} + {index}); set {CASES_ENV} to adjust the case count"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_applies_without_env() {
        assert_eq!(test_cases("SITM_TEST_CASES_UNSET_VAR", 42), 42);
    }

    #[test]
    fn env_overrides_and_garbage_falls_back() {
        std::env::set_var("SITM_TEST_CASES_SET_VAR", "7");
        assert_eq!(test_cases("SITM_TEST_CASES_SET_VAR", 42), 7);
        std::env::set_var("SITM_TEST_CASES_SET_VAR", "zero");
        assert_eq!(test_cases("SITM_TEST_CASES_SET_VAR", 42), 42);
        std::env::set_var("SITM_TEST_CASES_SET_VAR", "0");
        assert_eq!(test_cases("SITM_TEST_CASES_SET_VAR", 42), 42);
        std::env::remove_var("SITM_TEST_CASES_SET_VAR");
    }

    #[test]
    fn seeds_are_deterministic_per_index() {
        let mut first_pass = Vec::new();
        run_seeded_cases(4, 0x100, |i, rng| first_pass.push((i, rng.next_u64())));
        let mut second_pass = Vec::new();
        run_seeded_cases(4, 0x100, |i, rng| second_pass.push((i, rng.next_u64())));
        assert_eq!(first_pass, second_pass);
        assert_eq!(first_pass.len(), 4);
    }

    #[test]
    fn failing_case_propagates_panic() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_seeded_cases(3, 0, |i, _| assert!(i < 2, "boom"));
        }));
        assert!(result.is_err(), "the case panic must propagate");
    }
}

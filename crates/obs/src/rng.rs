//! A small, fast, dependency-free pseudo-random number generator.
//!
//! The repository runs in hermetic environments without crates.io
//! access, so this module replaces the `rand` crate for the simulator
//! and workloads. The generator is xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 — the same construction `rand`'s `SmallRng`
//! family uses — giving deterministic, statistically solid streams that
//! are cheap enough for the discrete-event hot path.
//!
//! The API mirrors the subset of `rand` the codebase used
//! (`SmallRng::seed_from_u64`, `gen_range` over half-open and inclusive
//! integer ranges, `gen_bool`), so call sites only swap their `use`
//! lines.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded, so
    /// nearby seeds yield uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive
    /// `a..=b`), over any primitive integer type.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: IntRange<T>,
    {
        let (lo, span) = range.bounds_and_span();
        lo.offset(self.uniform_below(span))
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random mantissa bits, the standard uniform-in-[0,1) recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Uniform in `[0, span]` when `span < u64::MAX`, or the full 64-bit
    /// range when `span == u64::MAX` (debiased by rejection sampling).
    fn uniform_below(&mut self, span: u64) -> u64 {
        if span == u64::MAX {
            return self.next_u64();
        }
        let bound = span + 1; // number of distinct values
                              // Lemire-style rejection: accept the widening-multiply bucket
                              // only when unbiased.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Integer types [`SmallRng::gen_range`] can sample.
pub trait UniformInt: Copy {
    /// Distance `self..other` as a `u64` span (`other - self - 1` for
    /// half-open use; callers pass the inclusive span).
    fn span_to(self, inclusive_hi: Self) -> u64;
    /// `self + delta`, where `delta <= span_to(hi)`.
    fn offset(self, delta: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn span_to(self, inclusive_hi: Self) -> u64 {
                inclusive_hi.wrapping_sub(self) as u64
            }
            fn offset(self, delta: u64) -> Self {
                self.wrapping_add(delta as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`SmallRng::gen_range`].
pub trait IntRange<T: UniformInt> {
    /// Returns `(low, inclusive_span)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn bounds_and_span(self) -> (T, u64);
}

impl<T: UniformInt + PartialOrd> IntRange<T> for Range<T> {
    fn bounds_and_span(self) -> (T, u64) {
        assert!(self.start < self.end, "gen_range called with empty range");
        let span = self.start.span_to(self.end) - 1;
        (self.start, span)
    }
}

impl<T: UniformInt + PartialOrd> IntRange<T> for RangeInclusive<T> {
    fn bounds_and_span(self) -> (T, u64) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        (lo, lo.span_to(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: u64 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn all_values_of_small_range_appear() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a value");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5..5u64);
    }
}

//! Abort forensics: structured conflict attribution behind the abort
//! counters.
//!
//! The rest of the stack counts *that* transactions abort; this module
//! records *why and where*. Every abort is classified into the
//! [`ForensicCause`] taxonomy and, when the abort site knows them,
//! carries the conflicting line (cache-line address in the simulator, a
//! `TVar` id in the software STM), the winning transaction's commit
//! timestamp, and the loser's snapshot timestamp. Recording follows the
//! same compile-out discipline as [`crate::trace::Tracer`]: with the
//! `trace` cargo feature **disabled** (the default), [`Forensics`] and
//! [`SharedForensics`] are zero-sized and every `record` call is an
//! empty inline function the optimizer deletes, so the simulator hot
//! path stays allocation-free.
//!
//! Two recorders cover the two runtimes:
//!
//! - [`Forensics`] — an *owned* recorder for the deterministic
//!   discrete-event engine. "Lock-free" by ownership (exactly like the
//!   per-thread tracers): one engine, one recorder, no atomics, fully
//!   deterministic output.
//! - [`SharedForensics`] — a sharded atomic recorder for the real-thread
//!   software STM. Threads record into `THREAD_SHARDS` shards chosen by
//!   thread index; counts are exact, the hot-line sketch is a racy
//!   space-saving approximation (standard for sketches).
//!
//! Both fold into a [`ForensicsSnapshot`], which is always compiled
//! (plain data): per-cause counts, the top-K hot-line sketch, and a
//! log2 histogram of *conflict age* (winner commit timestamp minus
//! loser snapshot timestamp — how stale the loser's snapshot was when
//! it lost). Snapshots serialize as `sitm.abort_forensics.v1` JSONL via
//! [`ForensicsReport`].

use crate::json::Json;
use crate::metrics::Histogram;

/// The forensic abort-cause taxonomy, unified across all four simulator
/// protocol models and the software STM. Coarser than the simulator's
/// own `AbortCause` (which feeds the paper's figures) and aligned with
/// the snapshot-isolation literature: first-committer-wins, read
/// validation, and SSI dangerous-structure (pivot) aborts are the three
/// data-conflict families; lock conflicts, capacity evictions and
/// explicit/system aborts cover the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForensicCause {
    /// First-committer-wins write-write validation failed: a newer
    /// committed version of a written (or promoted) line exists.
    WriteWriteFcw,
    /// A read (or read-set validation) conflicted with a concurrent
    /// writer: eager read-write dooms, serializable read-set validation,
    /// SONTM order-range collapse.
    ReadValidation,
    /// An SSI dangerous structure completed and this transaction was the
    /// pivot (or the only abortable party of one).
    SsiPivot,
    /// A lock conflict resolved against this transaction (the eager 2PL
    /// model's requester-wins dooms stand in for lock timeouts).
    LockTimeout,
    /// Bounded state ran out: version-buffer capacity, version-cap
    /// overflow, or a snapshot evicted by the discard-oldest policy.
    CapacityEviction,
    /// The transaction was aborted by explicit or system action
    /// (self-restart sandboxing, clock-overflow abort-all).
    Explicit,
}

impl ForensicCause {
    /// All causes, for iteration in tables.
    pub const ALL: [ForensicCause; 6] = [
        ForensicCause::WriteWriteFcw,
        ForensicCause::ReadValidation,
        ForensicCause::SsiPivot,
        ForensicCause::LockTimeout,
        ForensicCause::CapacityEviction,
        ForensicCause::Explicit,
    ];

    /// Dense index for table-building.
    pub fn index(self) -> usize {
        match self {
            ForensicCause::WriteWriteFcw => 0,
            ForensicCause::ReadValidation => 1,
            ForensicCause::SsiPivot => 2,
            ForensicCause::LockTimeout => 3,
            ForensicCause::CapacityEviction => 4,
            ForensicCause::Explicit => 5,
        }
    }

    /// Short stable label (used by the JSONL schema and tables).
    pub fn label(self) -> &'static str {
        match self {
            ForensicCause::WriteWriteFcw => "write-write-fcw",
            ForensicCause::ReadValidation => "read-validation",
            ForensicCause::SsiPivot => "ssi-pivot",
            ForensicCause::LockTimeout => "lock-timeout",
            ForensicCause::CapacityEviction => "capacity-eviction",
            ForensicCause::Explicit => "explicit",
        }
    }

    /// Parses a [`ForensicCause::label`] back.
    pub fn from_label(label: &str) -> Option<ForensicCause> {
        ForensicCause::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl std::fmt::Display for ForensicCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of hot-line slots retained by the top-K sketch.
pub const HOT_LINE_SLOTS: usize = 32;

/// A deterministic space-saving top-K sketch over line addresses.
///
/// While fewer than [`HOT_LINE_SLOTS`] distinct lines have been seen the
/// counts are exact. Past that, the minimum-count slot is evicted and
/// the newcomer inherits `min + 1` — the classic space-saving
/// overestimate, which preserves the guarantee that any line with true
/// count above `total / K` is present. Ties evict the first minimal
/// slot, so the sketch is deterministic for a deterministic input
/// stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopK {
    slots: Vec<(u64, u64)>,
}

impl TopK {
    /// Counts one occurrence of `line`.
    pub fn record(&mut self, line: u64) {
        if let Some(slot) = self.slots.iter_mut().find(|(l, _)| *l == line) {
            slot.1 += 1;
            return;
        }
        if self.slots.len() < HOT_LINE_SLOTS {
            self.slots.push((line, 1));
            return;
        }
        let min = self
            .slots
            .iter_mut()
            .min_by_key(|(_, c)| *c)
            .expect("sketch is non-empty at capacity");
        *min = (line, min.1 + 1);
    }

    /// Merges another sketch: counts add by line, then the result is
    /// re-truncated to the K heaviest lines.
    pub fn merge(&mut self, other: &TopK) {
        for &(line, count) in &other.slots {
            if let Some(slot) = self.slots.iter_mut().find(|(l, _)| *l == line) {
                slot.1 += count;
            } else {
                self.slots.push((line, count));
            }
        }
        self.slots
            .sort_by_key(|&(line, count)| (u64::MAX - count, line));
        self.slots.truncate(HOT_LINE_SLOTS);
    }

    /// The retained `(line, approximate count)` pairs, heaviest first
    /// (ties by ascending line address).
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut out = self.slots.clone();
        out.sort_by_key(|&(line, count)| (u64::MAX - count, line));
        out
    }
}

/// Everything an abort site knows about one abort, folded into
/// recorders and exported by snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForensicEvent {
    /// The conflicting line (or `TVar` id), when the site knows it.
    pub line: Option<u64>,
    /// Commit timestamp of the conflicting winner, when known.
    pub winner_ts: Option<u64>,
    /// Snapshot (begin) timestamp of the aborted loser, when known.
    pub snapshot_ts: Option<u64>,
}

/// The folded, always-compiled result of forensic recording: per-cause
/// abort counts, attribution coverage, the hot-line sketch, and the
/// conflict-age histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForensicsSnapshot {
    /// Aborts per cause, indexed by [`ForensicCause::index`].
    pub by_cause: [u64; ForensicCause::ALL.len()],
    /// Total aborts recorded.
    pub total: u64,
    /// Aborts that carried a concrete conflicting line.
    pub attributed: u64,
    /// The heaviest aborting lines, heaviest first.
    pub hot_lines: Vec<(u64, u64)>,
    /// Log2 histogram of `winner_ts - snapshot_ts` for aborts where both
    /// timestamps were known: how stale the loser's snapshot was.
    pub conflict_age: Histogram,
}

impl ForensicsSnapshot {
    /// Fraction of recorded aborts that carried a concrete line
    /// (`1.0` when nothing was recorded — there is nothing unattributed).
    pub fn attribution_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.attributed as f64 / self.total as f64
        }
    }

    /// Aborts recorded for `cause`.
    pub fn count(&self, cause: ForensicCause) -> u64 {
        self.by_cause[cause.index()]
    }

    /// Merges another snapshot (per-cause counts add, sketches merge,
    /// histograms merge).
    pub fn merge(&mut self, other: &ForensicsSnapshot) {
        for (into, from) in self.by_cause.iter_mut().zip(other.by_cause.iter()) {
            *into += from;
        }
        self.total += other.total;
        self.attributed += other.attributed;
        let mut sketch = TopK {
            slots: self.hot_lines.clone(),
        };
        sketch.merge(&TopK {
            slots: other.hot_lines.clone(),
        });
        self.hot_lines = sketch.entries();
        self.conflict_age.merge(&other.conflict_age);
    }

    /// The snapshot as a JSON object fragment (no schema envelope; see
    /// [`ForensicsReport`] for full `sitm.abort_forensics.v1` lines).
    pub fn to_json(&self) -> Json {
        let by_cause = ForensicCause::ALL
            .into_iter()
            .filter(|c| self.count(*c) > 0)
            .map(|c| (c.label(), Json::Num(self.count(c) as f64)))
            .collect::<Vec<_>>();
        let hot = self
            .hot_lines
            .iter()
            .map(|&(line, count)| Json::Arr(vec![Json::Num(line as f64), Json::Num(count as f64)]))
            .collect();
        Json::obj([
            ("total", Json::Num(self.total as f64)),
            ("attributed", Json::Num(self.attributed as f64)),
            ("by_cause", Json::obj(by_cause)),
            ("hot_lines", Json::Arr(hot)),
            ("conflict_age", self.conflict_age.to_json()),
        ])
    }

    /// Parses a [`ForensicsSnapshot::to_json`] object back.
    pub fn from_json(v: &Json) -> Option<ForensicsSnapshot> {
        let mut snap = ForensicsSnapshot {
            total: v.get("total")?.as_u64()?,
            attributed: v.get("attributed")?.as_u64()?,
            ..ForensicsSnapshot::default()
        };
        if let Some(Json::Obj(by_cause)) = v.get("by_cause") {
            for (label, count) in by_cause {
                let cause = ForensicCause::from_label(label)?;
                snap.by_cause[cause.index()] = count.as_u64()?;
            }
        }
        if let Some(Json::Arr(hot)) = v.get("hot_lines") {
            for pair in hot {
                let Json::Arr(lc) = pair else { return None };
                snap.hot_lines
                    .push((lc.first()?.as_u64()?, lc.get(1)?.as_u64()?));
            }
        }
        snap.conflict_age = Histogram::from_json(v.get("conflict_age")?)?;
        Some(snap)
    }
}

/// The `sitm.abort_forensics.v1` JSONL schema: one line per sweep cell,
/// pairing the run context with its [`ForensicsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForensicsReport {
    /// Bench binary that produced the line.
    pub bench: String,
    /// Protocol under test.
    pub protocol: String,
    /// Workload name.
    pub workload: String,
    /// Simulated core count.
    pub threads: usize,
    /// Seeds aggregated into the snapshot.
    pub seeds: usize,
    /// The aggregated forensics.
    pub snapshot: ForensicsSnapshot,
}

impl ForensicsReport {
    /// The JSONL schema identifier.
    pub const SCHEMA: &'static str = "sitm.abort_forensics.v1";

    /// The report as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut map = std::collections::BTreeMap::new();
        map.insert("schema".to_string(), Json::Str(Self::SCHEMA.to_string()));
        map.insert("bench".to_string(), Json::Str(self.bench.clone()));
        map.insert("protocol".to_string(), Json::Str(self.protocol.clone()));
        map.insert("workload".to_string(), Json::Str(self.workload.clone()));
        map.insert("threads".to_string(), Json::Num(self.threads as f64));
        map.insert("seeds".to_string(), Json::Num(self.seeds as f64));
        if let Json::Obj(snapshot) = self.snapshot.to_json() {
            map.extend(snapshot);
        }
        Json::Obj(map).to_line()
    }

    /// Parses one JSONL line back (returns `None` on schema mismatch or
    /// malformed fields).
    pub fn from_json_line(line: &str) -> Option<ForensicsReport> {
        let v = Json::parse(line).ok()?;
        if v.get("schema").and_then(Json::as_str) != Some(Self::SCHEMA) {
            return None;
        }
        Some(ForensicsReport {
            bench: v.get("bench")?.as_str()?.to_string(),
            protocol: v.get("protocol")?.as_str()?.to_string(),
            workload: v.get("workload")?.as_str()?.to_string(),
            threads: v.get("threads")?.as_u64()? as usize,
            seeds: v.get("seeds")?.as_u64()? as usize,
            snapshot: ForensicsSnapshot::from_json(&v)?,
        })
    }
}

/// The owned, deterministic forensic recorder used by the simulator
/// engine. Zero-sized and inert unless the `trace` cargo feature is
/// enabled; [`Forensics::snapshot`] then returns an empty snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Forensics {
    #[cfg(feature = "trace")]
    inner: imp::State,
}

impl Forensics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether forensic recording is compiled in at all.
    pub const fn enabled() -> bool {
        cfg!(feature = "trace")
    }

    /// Records one abort. A no-op (inlined away) when the `trace`
    /// feature is off.
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn record(&mut self, cause: ForensicCause, event: ForensicEvent) {
        #[cfg(feature = "trace")]
        self.inner.record(cause, event);
    }

    /// Folds the recording into a snapshot (empty with the feature off).
    pub fn snapshot(&self) -> ForensicsSnapshot {
        #[cfg(feature = "trace")]
        {
            self.inner.snapshot()
        }
        #[cfg(not(feature = "trace"))]
        {
            ForensicsSnapshot::default()
        }
    }
}

#[cfg(feature = "trace")]
mod imp {
    use super::{ForensicCause, ForensicEvent, ForensicsSnapshot, TopK};
    use crate::metrics::Histogram;

    /// The actual recorder state, only compiled under `trace`.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub(super) struct State {
        by_cause: [u64; ForensicCause::ALL.len()],
        total: u64,
        attributed: u64,
        hot_lines: TopK,
        conflict_age: Histogram,
    }

    impl State {
        pub(super) fn record(&mut self, cause: ForensicCause, event: ForensicEvent) {
            self.by_cause[cause.index()] += 1;
            self.total += 1;
            if let Some(line) = event.line {
                self.attributed += 1;
                self.hot_lines.record(line);
            }
            if let (Some(winner), Some(snapshot)) = (event.winner_ts, event.snapshot_ts) {
                self.conflict_age.record(winner.saturating_sub(snapshot));
            }
        }

        pub(super) fn snapshot(&self) -> ForensicsSnapshot {
            ForensicsSnapshot {
                by_cause: self.by_cause,
                total: self.total,
                attributed: self.attributed,
                hot_lines: self.hot_lines.entries(),
                conflict_age: self.conflict_age.clone(),
            }
        }
    }
}

/// Number of shards in [`SharedForensics`]; recording threads map to
/// shards by `thread_index % THREAD_SHARDS`.
pub const THREAD_SHARDS: usize = 16;

/// The sharded atomic forensic recorder used by the real-thread
/// software STM. Zero-sized and inert unless the `trace` cargo feature
/// is enabled. Per-cause counts are exact (relaxed atomic adds); the
/// hot-line sketch races benignly between threads of one shard and is
/// approximate, as sketches are.
#[derive(Debug, Default)]
pub struct SharedForensics {
    #[cfg(feature = "trace")]
    shards: shared_imp::Shards,
}

impl SharedForensics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one abort from the thread with dense index
    /// `thread_index`. A no-op (inlined away) when the `trace` feature
    /// is off. Lock-free: relaxed atomics only.
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn record(&self, thread_index: usize, cause: ForensicCause, event: ForensicEvent) {
        #[cfg(feature = "trace")]
        self.shards.record(thread_index, cause, event);
    }

    /// Folds all shards into a snapshot (empty with the feature off).
    /// A snapshot taken while writers are active is a consistent lower
    /// bound, not an atomic cut.
    pub fn snapshot(&self) -> ForensicsSnapshot {
        #[cfg(feature = "trace")]
        {
            self.shards.snapshot()
        }
        #[cfg(not(feature = "trace"))]
        {
            ForensicsSnapshot::default()
        }
    }
}

#[cfg(feature = "trace")]
mod shared_imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::{
        ForensicCause, ForensicEvent, ForensicsSnapshot, TopK, HOT_LINE_SLOTS, THREAD_SHARDS,
    };
    use crate::metrics::AtomicHistogram;

    /// Sentinel marking an unclaimed hot-line slot (line addresses and
    /// `TVar` ids never take this value in practice).
    const EMPTY: u64 = u64::MAX;

    #[derive(Debug)]
    struct Shard {
        by_cause: [AtomicU64; ForensicCause::ALL.len()],
        total: AtomicU64,
        attributed: AtomicU64,
        /// Racy space-saving slots: `(line, count)` pairs. A slot is
        /// claimed by storing its line; concurrent claims of one slot
        /// can drop a count — acceptable sketch error.
        hot_lines: [(AtomicU64, AtomicU64); HOT_LINE_SLOTS],
        conflict_age: AtomicHistogram,
    }

    impl Default for Shard {
        fn default() -> Self {
            Shard {
                by_cause: [const { AtomicU64::new(0) }; ForensicCause::ALL.len()],
                total: AtomicU64::new(0),
                attributed: AtomicU64::new(0),
                hot_lines: [const { (AtomicU64::new(EMPTY), AtomicU64::new(0)) }; HOT_LINE_SLOTS],
                conflict_age: AtomicHistogram::new(),
            }
        }
    }

    impl Shard {
        fn record_line(&self, line: u64) {
            // Pass 1: the line already owns a slot.
            for (slot_line, count) in &self.hot_lines {
                if slot_line.load(Ordering::Relaxed) == line {
                    count.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            // Pass 2: claim an empty slot.
            for (slot_line, count) in &self.hot_lines {
                if slot_line
                    .compare_exchange(EMPTY, line, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    count.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            // Pass 3: space-saving eviction of the minimum-count slot.
            let mut min_idx = 0;
            let mut min_count = u64::MAX;
            for (i, (_, count)) in self.hot_lines.iter().enumerate() {
                let c = count.load(Ordering::Relaxed);
                if c < min_count {
                    min_count = c;
                    min_idx = i;
                }
            }
            let (slot_line, count) = &self.hot_lines[min_idx];
            slot_line.store(line, Ordering::Relaxed);
            count.store(min_count + 1, Ordering::Relaxed);
        }
    }

    #[derive(Debug)]
    pub(super) struct Shards {
        shards: Vec<Shard>,
    }

    impl Default for Shards {
        fn default() -> Self {
            Shards {
                shards: (0..THREAD_SHARDS).map(|_| Shard::default()).collect(),
            }
        }
    }

    impl Shards {
        pub(super) fn record(
            &self,
            thread_index: usize,
            cause: ForensicCause,
            event: ForensicEvent,
        ) {
            let shard = &self.shards[thread_index % THREAD_SHARDS];
            shard.by_cause[cause.index()].fetch_add(1, Ordering::Relaxed);
            shard.total.fetch_add(1, Ordering::Relaxed);
            if let Some(line) = event.line {
                shard.attributed.fetch_add(1, Ordering::Relaxed);
                shard.record_line(line);
            }
            if let (Some(winner), Some(snapshot)) = (event.winner_ts, event.snapshot_ts) {
                shard.conflict_age.record(winner.saturating_sub(snapshot));
            }
        }

        pub(super) fn snapshot(&self) -> ForensicsSnapshot {
            let mut snap = ForensicsSnapshot::default();
            let mut sketch = TopK::default();
            for shard in &self.shards {
                for (i, c) in shard.by_cause.iter().enumerate() {
                    snap.by_cause[i] += c.load(Ordering::Relaxed);
                }
                snap.total += shard.total.load(Ordering::Relaxed);
                snap.attributed += shard.attributed.load(Ordering::Relaxed);
                let mut local = TopK::default();
                for (slot_line, count) in &shard.hot_lines {
                    let line = slot_line.load(Ordering::Relaxed);
                    let c = count.load(Ordering::Relaxed);
                    if line != EMPTY && c > 0 {
                        local.slots.push((line, c));
                    }
                }
                sketch.merge(&local);
                snap.conflict_age.merge(&shard.conflict_age.snapshot());
            }
            snap.hot_lines = sketch.entries();
            snap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_are_dense_and_labels_round_trip() {
        let mut seen = [false; ForensicCause::ALL.len()];
        for cause in ForensicCause::ALL {
            let i = cause.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
            assert_eq!(ForensicCause::from_label(cause.label()), Some(cause));
            assert_eq!(cause.to_string(), cause.label());
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(ForensicCause::from_label("no-such-cause"), None);
    }

    #[test]
    fn topk_is_exact_below_capacity() {
        let mut k = TopK::default();
        for _ in 0..3 {
            k.record(64);
        }
        k.record(128);
        assert_eq!(k.entries(), vec![(64, 3), (128, 1)]);
    }

    #[test]
    fn topk_evicts_the_minimum_and_overestimates() {
        let mut k = TopK::default();
        // Fill every slot with distinct lines.
        for line in 0..HOT_LINE_SLOTS as u64 {
            k.record(line * 64);
        }
        // A heavy hitter arrives after the sketch is full: it must be
        // retained (space-saving guarantee) with count >= its true count.
        for _ in 0..10 {
            k.record(999_936);
        }
        let entries = k.entries();
        assert_eq!(entries.len(), HOT_LINE_SLOTS);
        let (line, count) = entries[0];
        assert_eq!(line, 999_936);
        assert!(count >= 10);
    }

    #[test]
    fn topk_merge_re_truncates_to_capacity() {
        let mut a = TopK::default();
        let mut b = TopK::default();
        for line in 0..HOT_LINE_SLOTS as u64 {
            a.record(line);
            a.record(line);
            b.record(line + HOT_LINE_SLOTS as u64);
        }
        a.merge(&b);
        let entries = a.entries();
        assert_eq!(entries.len(), HOT_LINE_SLOTS);
        // The doubly-counted lines win over the singly-counted ones.
        assert!(entries.iter().all(|&(_, c)| c == 2));
    }

    #[test]
    fn snapshot_merge_adds_counts_and_rates() {
        let mut a = ForensicsSnapshot::default();
        a.by_cause[ForensicCause::WriteWriteFcw.index()] = 3;
        a.total = 4;
        a.attributed = 3;
        a.hot_lines = vec![(64, 3)];
        let mut b = ForensicsSnapshot::default();
        b.by_cause[ForensicCause::WriteWriteFcw.index()] = 1;
        b.total = 1;
        b.attributed = 1;
        b.hot_lines = vec![(64, 1)];
        a.merge(&b);
        assert_eq!(a.count(ForensicCause::WriteWriteFcw), 4);
        assert_eq!(a.total, 5);
        assert_eq!(a.hot_lines, vec![(64, 4)]);
        assert!((a.attribution_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_fully_attributed() {
        assert_eq!(ForensicsSnapshot::default().attribution_rate(), 1.0);
    }

    #[test]
    fn report_json_line_round_trips() {
        let mut snapshot = ForensicsSnapshot::default();
        snapshot.by_cause[ForensicCause::WriteWriteFcw.index()] = 7;
        snapshot.by_cause[ForensicCause::CapacityEviction.index()] = 2;
        snapshot.total = 10;
        snapshot.attributed = 9;
        snapshot.hot_lines = vec![(192, 6), (64, 3)];
        snapshot.conflict_age.record(3);
        snapshot.conflict_age.record(40);
        let report = ForensicsReport {
            bench: "abort_forensics".into(),
            protocol: "SI-TM".into(),
            workload: "array".into(),
            threads: 16,
            seeds: 3,
            snapshot,
        };
        let line = report.to_json_line();
        assert!(line.contains("sitm.abort_forensics.v1"));
        let back = ForensicsReport::from_json_line(&line).expect("round-trip parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json_line(), line, "serialization is a fixed point");
        assert_eq!(
            ForensicsReport::from_json_line("{\"schema\":\"other\"}"),
            None
        );
    }

    #[test]
    fn owned_recorder_is_inert_or_exact() {
        let mut f = Forensics::new();
        f.record(
            ForensicCause::WriteWriteFcw,
            ForensicEvent {
                line: Some(64),
                winner_ts: Some(9),
                snapshot_ts: Some(5),
            },
        );
        f.record(ForensicCause::Explicit, ForensicEvent::default());
        let snap = f.snapshot();
        if Forensics::enabled() {
            assert_eq!(snap.total, 2);
            assert_eq!(snap.attributed, 1);
            assert_eq!(snap.count(ForensicCause::WriteWriteFcw), 1);
            assert_eq!(snap.hot_lines, vec![(64, 1)]);
            assert_eq!(snap.conflict_age.total(), 1);
            assert_eq!(snap.conflict_age.max(), 4);
        } else {
            assert_eq!(snap, ForensicsSnapshot::default());
            assert_eq!(std::mem::size_of::<Forensics>(), 0, "must be a ZST");
            assert_eq!(std::mem::size_of::<SharedForensics>(), 0, "must be a ZST");
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn shared_recorder_counts_across_threads_exactly() {
        let f = SharedForensics::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let f = &f;
                s.spawn(move || {
                    for i in 0..500u64 {
                        f.record(
                            t,
                            ForensicCause::WriteWriteFcw,
                            ForensicEvent {
                                line: Some((i % 4) * 64),
                                winner_ts: Some(i + 1),
                                snapshot_ts: Some(i),
                            },
                        );
                    }
                });
            }
        });
        let snap = f.snapshot();
        assert_eq!(snap.total, 4000);
        assert_eq!(snap.attributed, 4000);
        assert_eq!(snap.count(ForensicCause::WriteWriteFcw), 4000);
        // Only 4 distinct lines: the sketch is exact.
        let total_sketched: u64 = snap.hot_lines.iter().map(|&(_, c)| c).sum();
        assert_eq!(total_sketched, 4000);
        assert_eq!(snap.conflict_age.total(), 4000);
    }
}

//! The unified run-report schema: one JSONL line per measured
//! configuration, emitted identically by every bench binary.
//!
//! The schema is versioned (`"sitm.run_report.v1"`); `sitm-report`
//! refuses lines whose schema string it does not recognize, so format
//! drift fails loudly instead of silently misparsing.

use crate::json::{Json, JsonError};
use crate::metrics::MetricsRegistry;
use crate::phase::{Phase, PhaseCycles};
use std::collections::BTreeMap;
use std::fmt;

/// The schema identifier written into every line.
pub const SCHEMA: &str = "sitm.run_report.v1";

/// Number of version-depth slots exported: 5 exact depths plus the tail
/// (accesses deeper than depth 4).
pub const VERSION_DEPTH_SLOTS: usize = 6;

/// One measured configuration of one bench, ready to serialize.
///
/// Fields mirror what the text output of the bench binaries reports:
/// identification (bench/protocol/workload/threads/seeds), headline
/// results (commits, aborts by cause, rates, cycles), and the deeper
/// profiles this PR adds (phase cycles, version-depth census, free-form
/// extras and metrics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Bench binary name, e.g. `"fig7_abort_rates"`.
    pub bench: String,
    /// Protocol label, e.g. `"SI-TM"`.
    pub protocol: String,
    /// Workload label, e.g. `"counter-hot"`.
    pub workload: String,
    /// Simulated thread count.
    pub threads: u64,
    /// Number of seeds averaged.
    pub seeds: u64,
    /// Committed transactions (summed over seeds).
    pub commits: u64,
    /// Aborts by cause label (e.g. `"read-write"`), summed over seeds.
    pub aborts: BTreeMap<String, u64>,
    /// aborts / (aborts + commits), saturated to 1.0 for truncated
    /// zero-progress runs.
    pub abort_rate: f64,
    /// Commits per million virtual cycles.
    pub throughput: f64,
    /// Total virtual cycles consumed.
    pub total_cycles: u64,
    /// Whether any seed hit the cycle ceiling before finishing.
    pub truncated: bool,
    /// Virtual cycles attributed to each phase (label → cycles).
    pub phase_cycles: BTreeMap<String, u64>,
    /// Version-depth census: index d = reads served at depth d for
    /// d < 5; index 5 = the deeper tail. All zeros when the protocol
    /// has no MVM underneath.
    pub version_depth: [u64; VERSION_DEPTH_SLOTS],
    /// Free-form per-bench extras (knob values, derived ratios).
    pub extra: BTreeMap<String, f64>,
    /// Named counters exported by the protocol's metrics registry.
    pub counters: BTreeMap<String, u64>,
}

impl RunReport {
    /// Creates an empty report identified by bench/protocol/workload.
    pub fn new(bench: &str, protocol: &str, workload: &str) -> Self {
        RunReport {
            bench: bench.to_string(),
            protocol: protocol.to_string(),
            workload: workload.to_string(),
            ..Default::default()
        }
    }

    /// Total aborts across all causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Copies phase cycles out of a [`PhaseCycles`] profile.
    pub fn set_phase_cycles(&mut self, pc: &PhaseCycles) {
        self.phase_cycles = pc
            .iter()
            .filter(|&(_, c)| c > 0)
            .map(|(p, c)| (p.label().to_string(), c))
            .collect();
    }

    /// Reconstructs a [`PhaseCycles`] profile (unknown labels ignored).
    pub fn phase_profile(&self) -> PhaseCycles {
        let mut pc = PhaseCycles::new();
        for (label, &cycles) in &self.phase_cycles {
            if let Some(p) = Phase::from_label(label) {
                pc.charge(p, cycles);
            }
        }
        pc
    }

    /// Copies every counter from a metrics registry into the report.
    pub fn set_counters(&mut self, reg: &MetricsRegistry) {
        self.counters = reg.counters().map(|(k, v)| (k.to_string(), v)).collect();
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = Json::obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("bench", Json::Str(self.bench.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("seeds", Json::Num(self.seeds as f64)),
            ("commits", Json::Num(self.commits as f64)),
            ("abort_rate", Json::Num(self.abort_rate)),
            ("throughput", Json::Num(self.throughput)),
            ("total_cycles", Json::Num(self.total_cycles as f64)),
            ("truncated", Json::Bool(self.truncated)),
            (
                "version_depth",
                Json::Arr(
                    self.version_depth
                        .iter()
                        .map(|&d| Json::Num(d as f64))
                        .collect(),
                ),
            ),
        ]);
        let num_map = |m: &BTreeMap<String, u64>| {
            Json::Obj(
                m.iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                    .collect(),
            )
        };
        if let Json::Obj(map) = &mut obj {
            map.insert("aborts".into(), num_map(&self.aborts));
            map.insert("phase_cycles".into(), num_map(&self.phase_cycles));
            map.insert(
                "extra".into(),
                Json::Obj(
                    self.extra
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v)))
                        .collect(),
                ),
            );
            map.insert("counters".into(), num_map(&self.counters));
        }
        obj.to_line()
    }

    /// Parses a line written by [`RunReport::to_json_line`].
    ///
    /// # Errors
    ///
    /// Fails on JSON syntax errors, an unknown schema string, or missing
    /// required fields.
    pub fn from_json_line(line: &str) -> Result<RunReport, ReportError> {
        let doc = Json::parse(line)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or(ReportError::MissingField("schema"))?;
        if schema != SCHEMA {
            return Err(ReportError::UnknownSchema(schema.to_string()));
        }
        let str_field = |name: &'static str| -> Result<String, ReportError> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(ReportError::MissingField(name))
        };
        let u64_field = |name: &'static str| -> Result<u64, ReportError> {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or(ReportError::MissingField(name))
        };
        let f64_field = |name: &'static str| -> Result<f64, ReportError> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or(ReportError::MissingField(name))
        };
        let u64_map = |name: &'static str| -> BTreeMap<String, u64> {
            match doc.get(name) {
                Some(Json::Obj(m)) => m
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                    .collect(),
                _ => BTreeMap::new(),
            }
        };

        let mut version_depth = [0u64; VERSION_DEPTH_SLOTS];
        if let Some(arr) = doc.get("version_depth").and_then(Json::as_arr) {
            for (slot, v) in version_depth.iter_mut().zip(arr.iter()) {
                *slot = v.as_u64().unwrap_or(0);
            }
        }
        let extra = match doc.get("extra") {
            Some(Json::Obj(m)) => m
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                .collect(),
            _ => BTreeMap::new(),
        };

        Ok(RunReport {
            bench: str_field("bench")?,
            protocol: str_field("protocol")?,
            workload: str_field("workload")?,
            threads: u64_field("threads")?,
            seeds: u64_field("seeds")?,
            commits: u64_field("commits")?,
            aborts: u64_map("aborts"),
            abort_rate: f64_field("abort_rate")?,
            throughput: f64_field("throughput")?,
            total_cycles: u64_field("total_cycles")?,
            truncated: doc
                .get("truncated")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            phase_cycles: u64_map("phase_cycles"),
            version_depth,
            extra,
            counters: u64_map("counters"),
        })
    }

    /// Parses every non-empty line of a JSONL document.
    ///
    /// # Errors
    ///
    /// Fails with the 1-based line number of the first bad line.
    pub fn from_jsonl(text: &str) -> Result<Vec<RunReport>, ReportError> {
        text.lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| {
                RunReport::from_json_line(l).map_err(|e| ReportError::AtLine(i + 1, Box::new(e)))
            })
            .collect()
    }
}

/// Errors from parsing a run report.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The line was not valid JSON.
    Syntax(JsonError),
    /// The schema string was missing or not [`SCHEMA`].
    UnknownSchema(String),
    /// A required field was absent or of the wrong type.
    MissingField(&'static str),
    /// Error at a given 1-based line of a JSONL document.
    AtLine(usize, Box<ReportError>),
}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Syntax(e)
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Syntax(e) => write!(f, "{e}"),
            ReportError::UnknownSchema(s) => {
                write!(f, "unknown schema {s:?} (expected {SCHEMA:?})")
            }
            ReportError::MissingField(name) => write!(f, "missing or mistyped field {name:?}"),
            ReportError::AtLine(n, e) => write!(f, "line {n}: {e}"),
        }
    }
}

impl std::error::Error for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("fig7_abort_rates", "SI-TM", "counter-hot");
        r.threads = 16;
        r.seeds = 3;
        r.commits = 120_000;
        r.aborts.insert("read-write".into(), 400);
        r.aborts.insert("write-write".into(), 90);
        r.abort_rate = 490.0 / 120_490.0;
        r.throughput = 61.25;
        r.total_cycles = 1_959_183;
        r.truncated = false;
        let mut pc = PhaseCycles::new();
        pc.charge(Phase::Read, 900_000);
        pc.charge(Phase::Commit, 100_000);
        r.set_phase_cycles(&pc);
        r.version_depth = [10_000, 500, 40, 3, 1, 7];
        r.extra.insert("version_cap".into(), 8.0);
        r.counters.insert("mvm.gc_reclaimed".into(), 77);
        r
    }

    #[test]
    fn json_line_roundtrips_exactly() {
        let r = sample();
        let line = r.to_json_line();
        assert!(line.starts_with('{') && !line.contains('\n'));
        let back = RunReport::from_json_line(&line).unwrap();
        assert_eq!(back, r);
        // And the serialization is a fixed point.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn phase_profile_reconstructs() {
        let r = sample();
        let pc = r.phase_profile();
        assert_eq!(pc[Phase::Read], 900_000);
        assert_eq!(pc[Phase::Commit], 100_000);
        assert_eq!(pc.total(), 1_000_000);
    }

    #[test]
    fn total_aborts_sums_causes() {
        assert_eq!(sample().total_aborts(), 490);
    }

    #[test]
    fn jsonl_parses_many_lines_and_reports_bad_line() {
        let a = sample();
        let mut b = sample();
        b.protocol = "2PL".into();
        let text = format!("{}\n\n{}\n", a.to_json_line(), b.to_json_line());
        let parsed = RunReport::from_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].protocol, "2PL");

        let bad = format!("{}\nnot json\n", a.to_json_line());
        let err = RunReport::from_jsonl(&bad).unwrap_err();
        assert!(matches!(err, ReportError::AtLine(2, _)), "{err}");
    }

    #[test]
    fn schema_mismatch_rejected() {
        let line = sample()
            .to_json_line()
            .replace("run_report.v1", "run_report.v9");
        let err = RunReport::from_json_line(&line).unwrap_err();
        assert!(matches!(err, ReportError::UnknownSchema(_)));
        assert!(RunReport::from_json_line("{}").is_err());
    }

    #[test]
    fn set_counters_copies_registry() {
        let mut reg = MetricsRegistry::new();
        reg.count("sitm.commits", 5);
        let mut r = RunReport::new("b", "p", "w");
        r.set_counters(&reg);
        assert_eq!(r.counters.get("sitm.commits"), Some(&5));
    }
}

//! The fixed-capacity ring-buffer event tracer.
//!
//! Each logical thread (or the MVM store) owns its own [`Tracer`], so
//! recording never takes a lock — the "lock-free" discipline is
//! ownership, not atomics, which is exactly right for the deterministic
//! single-threaded simulator and for per-thread instances elsewhere.
//!
//! The whole module is governed by the `trace` cargo feature. With the
//! feature **disabled** (the default), [`Tracer`] is a zero-sized type,
//! [`Tracer::record`] is an empty inline function the optimizer deletes,
//! and [`Tracer::drain`] returns an empty vector: the hot path carries
//! no cost and no allocation. Enable `--features trace` to capture the
//! last [`Tracer::DEFAULT_CAPACITY`] events per tracer (oldest events
//! are overwritten — a flight recorder, not an unbounded log).

use crate::event::{EventKind, TraceRecord};

/// Per-owner ring-buffer of [`TraceRecord`]s. Zero-sized and inert
/// unless the `trace` feature is enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tracer {
    #[cfg(feature = "trace")]
    inner: ring::Ring,
}

impl Tracer {
    /// Events retained per tracer when the `trace` feature is on.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a tracer with [`Tracer::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracer retaining the last `capacity` events (ignored —
    /// and allocation-free — when the `trace` feature is off).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (with the feature on).
    #[allow(unused_variables)]
    pub fn with_capacity(capacity: usize) -> Self {
        #[cfg(feature = "trace")]
        {
            Tracer {
                inner: ring::Ring::with_capacity(capacity),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            Tracer {}
        }
    }

    /// Whether tracing is compiled in at all.
    pub const fn enabled() -> bool {
        cfg!(feature = "trace")
    }

    /// Records one event. A no-op (inlined away) when the `trace`
    /// feature is off.
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn record(&mut self, at: u64, thread: u32, kind: EventKind) {
        #[cfg(feature = "trace")]
        self.inner.push(TraceRecord { at, thread, kind });
    }

    /// Number of events currently retained (0 with the feature off).
    pub fn len(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            self.inner.len()
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were dropped to the ring's wraparound.
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.inner.dropped()
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Takes the retained events in recording order (oldest first),
    /// leaving the tracer empty. Always empty with the feature off.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        #[cfg(feature = "trace")]
        {
            self.inner.drain()
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }
}

/// Merges per-thread traces into one stream ordered by `(at, thread)`,
/// which is the global virtual-time order (ties broken by thread id, the
/// same tiebreak the engine scheduler uses).
pub fn merge_traces(mut traces: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let mut all: Vec<TraceRecord> = traces.drain(..).flatten().collect();
    // Stable sort: events of one thread at the same cycle keep their
    // recording order.
    all.sort_by_key(|r| (r.at, r.thread));
    all
}

#[cfg(feature = "trace")]
mod ring {
    use crate::event::TraceRecord;

    /// The actual ring buffer, only compiled under `trace`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(super) struct Ring {
        buf: Vec<TraceRecord>,
        capacity: usize,
        /// Index of the next write slot.
        head: usize,
        /// Total events ever recorded.
        recorded: u64,
    }

    impl Default for Ring {
        fn default() -> Self {
            Ring::with_capacity(super::Tracer::DEFAULT_CAPACITY)
        }
    }

    impl Ring {
        pub(super) fn with_capacity(capacity: usize) -> Self {
            assert!(capacity > 0, "tracer capacity must be positive");
            Ring {
                buf: Vec::with_capacity(capacity.min(1024)),
                capacity,
                head: 0,
                recorded: 0,
            }
        }

        pub(super) fn push(&mut self, r: TraceRecord) {
            if self.buf.len() < self.capacity {
                self.buf.push(r);
            } else {
                self.buf[self.head] = r;
            }
            self.head = (self.head + 1) % self.capacity;
            self.recorded += 1;
        }

        pub(super) fn len(&self) -> usize {
            self.buf.len()
        }

        pub(super) fn dropped(&self) -> u64 {
            self.recorded - self.buf.len() as u64
        }

        pub(super) fn drain(&mut self) -> Vec<TraceRecord> {
            let split = if self.buf.len() < self.capacity {
                0 // not yet wrapped: buffer is already oldest-first
            } else {
                self.head
            };
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[split..]);
            out.extend_from_slice(&self.buf[..split]);
            self.buf.clear();
            self.head = 0;
            self.recorded = 0;
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn rec(at: u64) -> (u64, u32, EventKind) {
        (at, 0, EventKind::Commit)
    }

    #[test]
    fn disabled_tracer_is_inert_and_zero_cost() {
        if Tracer::enabled() {
            return; // covered by the cfg(feature) tests below
        }
        let mut t = Tracer::new();
        let (at, th, k) = rec(1);
        t.record(at, th, k);
        assert_eq!(t.len(), 0);
        assert!(t.drain().is_empty());
        assert_eq!(std::mem::size_of::<Tracer>(), 0, "Tracer must be a ZST");
    }

    #[cfg(feature = "trace")]
    mod enabled {
        use super::super::*;
        use crate::event::EventKind;

        #[test]
        fn records_in_order_until_capacity() {
            let mut t = Tracer::with_capacity(8);
            for i in 0..5 {
                t.record(i, 0, EventKind::Commit);
            }
            assert_eq!(t.len(), 5);
            assert_eq!(t.dropped(), 0);
            let out = t.drain();
            assert_eq!(
                out.iter().map(|r| r.at).collect::<Vec<_>>(),
                vec![0, 1, 2, 3, 4]
            );
            assert!(t.is_empty());
        }

        #[test]
        fn wraparound_keeps_newest_oldest_first() {
            let mut t = Tracer::with_capacity(4);
            for i in 0..10 {
                t.record(i, 0, EventKind::Commit);
            }
            assert_eq!(t.len(), 4);
            assert_eq!(t.dropped(), 6);
            let out = t.drain();
            assert_eq!(
                out.iter().map(|r| r.at).collect::<Vec<_>>(),
                vec![6, 7, 8, 9]
            );
        }

        #[test]
        fn wraparound_at_exact_capacity_boundary() {
            let mut t = Tracer::with_capacity(3);
            for i in 0..3 {
                t.record(i, 0, EventKind::Commit);
            }
            assert_eq!(t.dropped(), 0);
            let out = t.drain();
            assert_eq!(out.iter().map(|r| r.at).collect::<Vec<_>>(), vec![0, 1, 2]);
        }

        #[test]
        #[should_panic(expected = "capacity must be positive")]
        fn zero_capacity_rejected() {
            Tracer::with_capacity(0);
        }
    }

    #[test]
    fn merge_orders_by_time_then_thread() {
        use crate::event::TraceRecord;
        let a = vec![
            TraceRecord {
                at: 1,
                thread: 0,
                kind: EventKind::Commit,
            },
            TraceRecord {
                at: 5,
                thread: 0,
                kind: EventKind::Commit,
            },
        ];
        let b = vec![
            TraceRecord {
                at: 1,
                thread: 1,
                kind: EventKind::Commit,
            },
            TraceRecord {
                at: 3,
                thread: 1,
                kind: EventKind::Commit,
            },
        ];
        let merged = merge_traces(vec![b, a]);
        let order: Vec<(u64, u32)> = merged.iter().map(|r| (r.at, r.thread)).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (3, 1), (5, 0)]);
    }
}

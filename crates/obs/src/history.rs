//! Per-transaction execution histories for the isolation oracle
//! (`sitm-check`).
//!
//! A [`History`] is a bounded in-memory log of [`TxnRecord`]s, one per
//! transaction *attempt*: its begin/commit timestamps as reported by the
//! protocol under test, its reads (with the timestamp of the version
//! each read observed), its writes and promotions, and its outcome.
//! Recorders (the simulator engine, the software STM commit path) build
//! records through [`TxnBuilder`] and push them here; the oracle in
//! `sitm-check` replays the log and machine-checks the isolation-level
//! axioms against it.
//!
//! The schema deliberately uses only plain integers and static strings
//! so this module sits at the bottom of the workspace graph, and every
//! record exports as one `sitm.txn.v1` JSONL line via [`crate::Json`].

use crate::json::Json;

/// Default bound on retained records (~1M attempts; far above any Quick
/// fuzzing run, small enough to never threaten memory).
pub const DEFAULT_HISTORY_CAPACITY: usize = 1 << 20;

/// One recorded transactional operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryOp {
    /// Global operation sequence number (total order over every
    /// recorded operation of the run; gaps are fine).
    pub seq: u64,
    /// What the operation did.
    pub kind: OpKind,
}

/// The kinds of recorded operations. `line` is the conflict-detection
/// unit of the system under test: a cache-line address in the simulator,
/// a `TVar` id in the software STM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A transactional read.
    Read {
        /// Line read.
        line: u64,
        /// Timestamp of the version the read observed (`None` when the
        /// read was served from the transaction's own write buffer, or
        /// when the protocol has no version timestamps).
        observed: Option<u64>,
    },
    /// A transactional write.
    Write {
        /// Line written.
        line: u64,
    },
    /// A read promotion (validated like a write, installs nothing).
    Promote {
        /// Line promoted.
        line: u64,
    },
}

impl OpKind {
    /// The line this operation touched.
    pub fn line(&self) -> u64 {
        match *self {
            OpKind::Read { line, .. } | OpKind::Write { line } | OpKind::Promote { line } => line,
        }
    }
}

/// How a transaction attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The attempt committed.
    Committed,
    /// The attempt aborted; the payload is the protocol's cause label.
    Aborted(&'static str),
}

/// One transaction attempt, fully recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Unique attempt id within the run.
    pub txn: u64,
    /// Executing thread.
    pub thread: usize,
    /// Timestamp epoch: protocols that recover from clock overflow by
    /// resetting the clock bump this; timestamp comparisons are only
    /// meaningful within one epoch.
    pub epoch: u64,
    /// Global sequence number of the begin.
    pub begin_seq: u64,
    /// Global sequence number of the commit/abort.
    pub end_seq: u64,
    /// Begin (snapshot) timestamp, if the protocol is timestamp-based.
    pub begin_ts: Option<u64>,
    /// Commit (end) timestamp. `None` for aborts and for read-only /
    /// promotion-only commits, which reserve no end timestamp.
    pub commit_ts: Option<u64>,
    /// How the attempt ended.
    pub outcome: TxnOutcome,
    /// Every recorded operation, in issue order.
    pub ops: Vec<HistoryOp>,
}

impl TxnRecord {
    /// Whether the attempt committed.
    pub fn committed(&self) -> bool {
        self.outcome == TxnOutcome::Committed
    }

    /// Lines this transaction wrote.
    pub fn write_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.ops.iter().filter_map(|op| match op.kind {
            OpKind::Write { line } => Some(line),
            _ => None,
        })
    }

    /// The record as one `sitm.txn.v1` JSON object.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| match v {
            Some(n) => Json::Num(n as f64),
            None => Json::Null,
        };
        let ops = self
            .ops
            .iter()
            .map(|op| {
                let (kind, line, observed) = match op.kind {
                    OpKind::Read { line, observed } => ("read", line, observed),
                    OpKind::Write { line } => ("write", line, None),
                    OpKind::Promote { line } => ("promote", line, None),
                };
                let mut pairs = vec![
                    ("seq", Json::Num(op.seq as f64)),
                    ("op", Json::Str(kind.to_string())),
                    ("line", Json::Num(line as f64)),
                ];
                if let Some(ts) = observed {
                    pairs.push(("observed", Json::Num(ts as f64)));
                }
                Json::obj(pairs)
            })
            .collect();
        Json::obj([
            ("schema", Json::Str("sitm.txn.v1".to_string())),
            ("txn", Json::Num(self.txn as f64)),
            ("thread", Json::Num(self.thread as f64)),
            ("epoch", Json::Num(self.epoch as f64)),
            ("begin_seq", Json::Num(self.begin_seq as f64)),
            ("end_seq", Json::Num(self.end_seq as f64)),
            ("begin_ts", opt(self.begin_ts)),
            ("commit_ts", opt(self.commit_ts)),
            (
                "outcome",
                match self.outcome {
                    TxnOutcome::Committed => Json::Str("committed".to_string()),
                    TxnOutcome::Aborted(cause) => Json::Str(format!("aborted:{cause}")),
                },
            ),
            ("ops", Json::Arr(ops)),
        ])
    }
}

/// Accumulates one in-flight transaction attempt until its outcome is
/// known.
#[derive(Debug, Clone)]
pub struct TxnBuilder {
    record: TxnRecord,
}

impl TxnBuilder {
    /// Starts a record at the begin of an attempt.
    pub fn new(txn: u64, thread: usize, epoch: u64, begin_seq: u64, begin_ts: Option<u64>) -> Self {
        TxnBuilder {
            record: TxnRecord {
                txn,
                thread,
                epoch,
                begin_seq,
                end_seq: begin_seq,
                begin_ts,
                commit_ts: None,
                outcome: TxnOutcome::Committed,
                ops: Vec::new(),
            },
        }
    }

    /// Appends an operation.
    pub fn op(&mut self, seq: u64, kind: OpKind) {
        self.record.ops.push(HistoryOp { seq, kind });
    }

    /// Finishes the record as committed. `commit_ts` is `None` for
    /// commits that reserved no end timestamp (read-only, promotion-only).
    pub fn commit(mut self, end_seq: u64, commit_ts: Option<u64>) -> TxnRecord {
        self.record.end_seq = end_seq;
        self.record.commit_ts = commit_ts;
        self.record.outcome = TxnOutcome::Committed;
        self.record
    }

    /// Finishes the record as aborted with the protocol's cause label.
    pub fn abort(mut self, end_seq: u64, cause: &'static str) -> TxnRecord {
        self.record.end_seq = end_seq;
        self.record.commit_ts = None;
        self.record.outcome = TxnOutcome::Aborted(cause);
        self.record
    }
}

/// The bounded in-memory transaction log of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    records: Vec<TxnRecord>,
    /// Records discarded because the capacity bound was hit. The oracle
    /// refuses to certify a history with drops (its completeness
    /// assumptions no longer hold).
    dropped: u64,
    capacity: usize,
}

impl Default for History {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_HISTORY_CAPACITY)
    }
}

impl History {
    /// An empty history retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        History {
            records: Vec::new(),
            dropped: 0,
            capacity,
        }
    }

    /// Appends a finished record, or counts it as dropped when the
    /// capacity bound is reached.
    pub fn push(&mut self, record: TxnRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained records, in finish order.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Retained committed records.
    pub fn committed(&self) -> impl Iterator<Item = &TxnRecord> {
        self.records.iter().filter(|r| r.committed())
    }

    /// Records discarded over the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Exports the log as JSONL, one `sitm.txn.v1` record per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json().to_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(txn: u64) -> TxnRecord {
        let mut b = TxnBuilder::new(txn, 0, 0, 1, Some(5));
        b.op(
            2,
            OpKind::Read {
                line: 64,
                observed: Some(3),
            },
        );
        b.op(3, OpKind::Write { line: 64 });
        b.commit(4, Some(9))
    }

    #[test]
    fn builder_round_trip() {
        let r = sample_record(7);
        assert!(r.committed());
        assert_eq!(r.begin_ts, Some(5));
        assert_eq!(r.commit_ts, Some(9));
        assert_eq!(r.ops.len(), 2);
        assert_eq!(r.write_lines().collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    fn abort_clears_commit_ts() {
        let b = TxnBuilder::new(1, 2, 0, 10, Some(11));
        let r = b.abort(12, "write-write");
        assert!(!r.committed());
        assert_eq!(r.commit_ts, None);
        assert_eq!(r.outcome, TxnOutcome::Aborted("write-write"));
    }

    #[test]
    fn capacity_bound_counts_drops() {
        let mut h = History::with_capacity(2);
        for txn in 0..5 {
            h.push(sample_record(txn));
        }
        assert_eq!(h.len(), 2);
        assert_eq!(h.dropped(), 3);
        assert_eq!(h.committed().count(), 2);
    }

    #[test]
    fn jsonl_lines_parse_and_carry_schema() {
        let mut h = History::default();
        h.push(sample_record(1));
        h.push(TxnBuilder::new(2, 1, 0, 5, None).abort(6, "order"));
        let text = h.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = Json::parse(line).expect("history lines parse back");
            assert_eq!(v.get("schema").and_then(Json::as_str), Some("sitm.txn.v1"));
        }
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(
            second.get("outcome").and_then(Json::as_str),
            Some("aborted:order")
        );
        assert_eq!(second.get("begin_ts"), Some(&Json::Null));
    }
}

//! In-tree model checker for the sitm workspace.
//!
//! The workspace is dependency-free by design (hermetic builds), so
//! this crate supplies what the real `loom` crate would: shimmed
//! atomics, mutexes and threads whose every operation funnels through
//! a cooperative scheduler, plus two drivers over that scheduler —
//!
//! * [`model`] / [`model_with`] — **loom mode**: exhaustive DFS over
//!   every thread interleaving of a small closure, bounded by a
//!   preemption budget (`LOOM_MAX_PREEMPTIONS`, default 2 — the
//!   classic result that almost all concurrency bugs need only a few
//!   preemptions). The closure runs once per interleaving; any panic
//!   (assertion failure) is reported with the schedule that produced
//!   it, and the run is deterministic, so re-running the test
//!   reproduces it.
//! * [`dst::run_seeded`] — **DST mode**: one execution driven by a
//!   seeded random scheduler with fault injection ([`FaultPlan`]:
//!   thread stalls, which become lock-hold stalls when the victim
//!   holds a lock). Given the same seed, the schedule — and therefore
//!   the entire run — is byte-identical, which is the replay
//!   contract: CI prints a failing seed, you rerun it locally.
//!
//! The model checks sequential consistency only (see [`sync`]);
//! interleaving bugs are in scope, weak-memory ordering bugs are not.
//!
//! Model closures must be self-contained: reset any process-global
//! state at the top (sitm-stm exposes `model_support::reset()` for
//! its clock/registry statics), spawn threads with [`thread::spawn`],
//! and assert invariants before returning. Runs are serialized on a
//! process-wide lock, so `cargo test` parallelism cannot interleave
//! two models.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hint;
mod sched;
mod strategy;
pub mod sync;
pub mod thread;

pub use strategy::FaultPlan;

use std::sync::{Arc, Mutex};

use sched::Sched;
use strategy::{Dfs, RandomWalk, Strategy};

/// Serializes model/DST runs across test threads: the scheduler
/// assumes the only model threads alive are its own, and model
/// closures reset process-global state.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

/// Tuning for [`model_with`]. `Default` reads the environment.
#[derive(Clone, Copy, Debug)]
pub struct ModelOpts {
    /// Preemption bound per execution (`LOOM_MAX_PREEMPTIONS`,
    /// default 2). Voluntary yields are free; only switching away
    /// from a thread that could have continued counts.
    pub max_preemptions: u32,
    /// Cap on explored interleavings (`LOOM_MAX_ITERATIONS`, default
    /// 200 000). Hitting it fails the run: the model is too big for
    /// an exhaustiveness claim and must shrink (or the cap must grow).
    pub max_iterations: u64,
    /// Per-execution scheduling-step budget (`LOOM_MAX_STEPS`,
    /// default 100 000); exceeding it reports a livelock.
    pub max_steps: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Default for ModelOpts {
    fn default() -> Self {
        ModelOpts {
            max_preemptions: env_u64("LOOM_MAX_PREEMPTIONS", 2) as u32,
            max_iterations: env_u64("LOOM_MAX_ITERATIONS", 200_000),
            max_steps: env_u64("LOOM_MAX_STEPS", 100_000),
        }
    }
}

/// Exhaustively model-check `f` under every thread interleaving
/// (bounded by [`ModelOpts::default`]).
///
/// # Panics
///
/// Panics if any interleaving makes `f` panic (the failure report
/// includes the schedule), deadlock, livelock past the step budget,
/// or if the search space exceeds the iteration cap.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(ModelOpts::default(), f);
}

/// [`model`] with explicit bounds. Returns the number of
/// interleavings explored (useful to sanity-check model size).
///
/// # Panics
///
/// Same contract as [`model`].
pub fn model_with<F>(opts: ModelOpts, f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = MODEL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sched::install_hook_once();
    let f = Arc::new(f);
    let sched = Arc::new(Sched::new(
        opts.max_preemptions,
        opts.max_steps,
        Strategy::Dfs(Dfs::new()),
    ));
    loop {
        let root = Arc::clone(&f);
        if let Some(failure) = sched::run_execution(&sched, move || root()) {
            let explored = sched.with_strategy(|s| match s {
                Strategy::Dfs(d) => d.executions(),
                Strategy::Random(_) => 0,
            });
            panic!(
                "loom model failed on interleaving {} (previous {} passed)\n{}\n\
                 the DFS is deterministic: rerun this test to reproduce",
                explored + 1,
                explored,
                failure
            );
        }
        let explored = sched.with_strategy(|s| match s {
            Strategy::Dfs(d) => d.executions(),
            Strategy::Random(_) => 0,
        });
        if explored >= opts.max_iterations {
            panic!(
                "loom model explored {explored} interleavings without exhausting the space; \
                 shrink the model or raise LOOM_MAX_ITERATIONS"
            );
        }
        if !sched.advance_strategy() {
            return sched.with_strategy(|s| match s {
                Strategy::Dfs(d) => d.executions(),
                Strategy::Random(_) => 0,
            });
        }
    }
}

/// Deterministic simulation testing: seeded single-execution runs of
/// real-thread closures under a random scheduler with fault
/// injection.
pub mod dst {
    use super::{sched, Arc, FaultPlan, Mutex, RandomWalk, Sched, Strategy};

    /// What a DST run did, for determinism checks and logging.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct DstReport {
        /// The seed that reproduces this run.
        pub seed: u64,
        /// Scheduling decisions taken.
        pub decisions: u64,
        /// Stalls injected by the [`FaultPlan`].
        pub stalls_injected: u64,
        /// FNV fingerprint of the chosen schedule; equal seeds must
        /// yield equal hashes (the replay contract).
        pub schedule_hash: u64,
    }

    /// Run `f` once under a seeded random scheduler with `plan`'s
    /// fault injection, returning its value and the run report.
    ///
    /// The run is a pure function of `seed` for a deterministic `f`
    /// (reset global state first; take no wall-clock readings).
    ///
    /// # Panics
    ///
    /// Panics if the run fails (assertion, deadlock, step budget) —
    /// the message leads with the seed so the failure can be replayed.
    pub fn run_seeded<F, R>(seed: u64, plan: FaultPlan, f: F) -> (R, DstReport)
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        let _serial = super::MODEL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sched::install_hook_once();
        let sched = Arc::new(Sched::new(
            u32::MAX,
            super::env_u64("LOOM_MAX_STEPS", 2_000_000),
            Strategy::Random(RandomWalk::new(seed, plan)),
        ));
        let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let failure = sched::run_execution(&sched, move || {
            let v = f();
            *slot2
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
        });
        let report = sched.with_strategy(|s| match s {
            Strategy::Random(r) => DstReport {
                seed,
                decisions: r.decisions,
                stalls_injected: r.stalls_injected,
                schedule_hash: r.schedule_hash,
            },
            Strategy::Dfs(_) => unreachable!("DST always runs the random strategy"),
        });
        if let Some(failure) = failure {
            panic!(
                "DST run failed — replay with seed {seed:#x} ({} decisions in)\n{failure}",
                report.decisions
            );
        }
        let value = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("DST root closure completed");
        (value, report)
    }
}

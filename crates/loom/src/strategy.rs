//! Scheduling strategies: exhaustive DFS (loom mode) and a seeded
//! random walk with fault injection (DST mode).

use sitm_obs::SmallRng;

/// Which thread to run next, given the enabled candidates. An enum
/// rather than a trait object so the drivers can read strategy
/// internals (execution counts, schedule hashes) after a run.
pub(crate) enum Strategy {
    Dfs(Dfs),
    Random(RandomWalk),
}

impl Strategy {
    /// Pick an index into `cands` (ascending thread ids, never empty).
    pub(crate) fn choose(&mut self, cands: &[usize]) -> usize {
        match self {
            Strategy::Dfs(d) => d.choose(cands),
            Strategy::Random(r) => r.choose(cands),
        }
    }

    /// Prepare the next execution; `false` when the space is done
    /// (DFS exhausted, or a single-shot random walk).
    pub(crate) fn next_execution(&mut self) -> bool {
        match self {
            Strategy::Dfs(d) => d.next_execution(),
            Strategy::Random(_) => false,
        }
    }
}

/// Depth-first enumeration of scheduling decisions: replay a prefix,
/// take the first untried branch at its deepest decision, extend with
/// first-choice (index 0) decisions to completion. Combined with the
/// scheduler's preemption bound this is classic bounded systematic
/// concurrency testing.
pub(crate) struct Dfs {
    /// Branch indices to replay at the start of this execution.
    prefix: Vec<usize>,
    /// Decisions taken this execution: (chosen index, candidate count).
    taken: Vec<(usize, usize)>,
    depth: usize,
    executions: u64,
}

impl Dfs {
    pub(crate) fn new() -> Self {
        Dfs {
            prefix: Vec::new(),
            taken: Vec::new(),
            depth: 0,
            executions: 0,
        }
    }

    pub(crate) fn executions(&self) -> u64 {
        self.executions
    }

    fn choose(&mut self, cands: &[usize]) -> usize {
        let planned = if self.depth < self.prefix.len() {
            self.prefix[self.depth]
        } else {
            0
        };
        // Candidate sets are a pure function of prior decisions, so a
        // replayed prefix always sees the same set; the clamp is a
        // belt against a non-deterministic model (which would explore
        // soundly but non-exhaustively rather than panic).
        let idx = planned.min(cands.len() - 1);
        debug_assert!(
            planned < cands.len(),
            "replay divergence: planned branch {planned} of {} candidates",
            cands.len()
        );
        self.taken.push((idx, cands.len()));
        self.depth += 1;
        idx
    }

    fn next_execution(&mut self) -> bool {
        self.executions += 1;
        while let Some((idx, n)) = self.taken.pop() {
            if idx + 1 < n {
                self.prefix = self.taken.iter().map(|&(i, _)| i).collect();
                self.prefix.push(idx + 1);
                self.taken.clear();
                self.depth = 0;
                return true;
            }
        }
        false
    }
}

/// What the DST scheduler injects beyond plain random interleaving:
/// with probability `stall_chance` per decision, one enabled thread
/// is taken out of the candidate pool for 1..=`max_stall_decisions`
/// decisions. A stalled thread holding a TVar commit lock or a shimmed
/// mutex produces exactly the lock-hold stall and convoying the
/// harness is after; a stalled reader models preemption/GC pauses.
/// Stalls never wedge the run: when every candidate is stalled the
/// pool falls back to all of them.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Per-decision probability of injecting a new stall.
    pub stall_chance: f64,
    /// Upper bound on a single stall's length, in scheduling decisions.
    pub max_stall_decisions: u32,
}

impl FaultPlan {
    /// No fault injection: pure seeded random interleaving.
    pub fn none() -> Self {
        FaultPlan {
            stall_chance: 0.0,
            max_stall_decisions: 0,
        }
    }
}

impl Default for FaultPlan {
    /// Aggressive-but-live defaults used by the DST harness.
    fn default() -> Self {
        FaultPlan {
            stall_chance: 0.08,
            max_stall_decisions: 24,
        }
    }
}

/// Seeded uniform scheduling with injected stalls. Every run is a
/// pure function of the seed (and the model being deterministic
/// modulo scheduling), which is the DST replay contract.
pub(crate) struct RandomWalk {
    rng: SmallRng,
    plan: FaultPlan,
    /// Remaining stall decisions per thread id (grows on demand).
    stalls: Vec<u32>,
    pub(crate) decisions: u64,
    pub(crate) stalls_injected: u64,
    pub(crate) schedule_hash: u64,
}

impl RandomWalk {
    pub(crate) fn new(seed: u64, plan: FaultPlan) -> Self {
        RandomWalk {
            rng: SmallRng::seed_from_u64(seed),
            plan,
            stalls: Vec::new(),
            decisions: 0,
            stalls_injected: 0,
            schedule_hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn choose(&mut self, cands: &[usize]) -> usize {
        self.decisions += 1;
        if let Some(&max_id) = cands.last() {
            if self.stalls.len() <= max_id {
                self.stalls.resize(max_id + 1, 0);
            }
        }
        // Maybe stall one currently-enabled thread.
        if self.plan.stall_chance > 0.0
            && cands.len() > 1
            && self.rng.gen_bool(self.plan.stall_chance)
        {
            let victim = cands[self.rng.gen_range(0..cands.len())];
            self.stalls[victim] = self.rng.gen_range(1..=self.plan.max_stall_decisions);
            self.stalls_injected += 1;
        }
        // Schedule among non-stalled candidates; if every candidate is
        // stalled, ignore the stalls rather than wedge.
        let live: Vec<usize> = (0..cands.len())
            .filter(|&p| self.stalls[cands[p]] == 0)
            .collect();
        let pos = if live.is_empty() {
            self.rng.gen_range(0..cands.len())
        } else {
            live[self.rng.gen_range(0..live.len())]
        };
        for s in &mut self.stalls {
            *s = s.saturating_sub(1);
        }
        // FNV-1a over chosen thread ids: a cheap schedule fingerprint
        // the determinism tests compare across replays.
        self.schedule_hash ^= cands[pos] as u64;
        self.schedule_hash = self.schedule_hash.wrapping_mul(0x0000_0100_0000_01b3);
        pos
    }
}

//! Shimmed threading: model threads are real OS threads gated by the
//! scheduler token, so only one runs at a time and every interleaving
//! is a replayable sequence of decisions.

use std::sync::{Arc, Mutex};

use crate::sched::{self, SwitchKind};

/// Handle to a shimmed thread. Unlike `std`, [`JoinHandle::join`]
/// returns the value directly: a panicking model thread aborts the
/// whole execution first, so join can never observe one.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    /// Spawned inside a model: identified by scheduler thread id,
    /// with the result smuggled through a shared slot.
    Model {
        sched: Arc<sched::Sched>,
        id: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
    /// Spawned with no scheduler active: plain std thread.
    Std(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value.
    ///
    /// # Panics
    ///
    /// Panics if the joined thread panicked — though inside a model
    /// that abort tears down the execution before join returns.
    pub fn join(self) -> T {
        match self.inner {
            Inner::Model { sched, id, slot } => {
                let (_, me) = sched::current().expect("join called outside the model");
                sched.join_thread(me, id);
                slot.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("joined model thread panicked")
            }
            Inner::Std(h) => h.join().expect("joined thread panicked"),
        }
    }
}

/// Shim of `std::thread::spawn`. Inside a model the new thread is
/// registered with the scheduler and runs only when given the token;
/// outside, it is a plain std spawn.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        Some((sched, _)) => {
            let slot = Arc::new(Mutex::new(None));
            let slot2 = Arc::clone(&slot);
            let id = sched::spawn_model_thread(&sched, move || {
                let v = f();
                *slot2
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
            });
            // Creating a thread is itself a visible event.
            sched::switch_point(SwitchKind::Progress);
            JoinHandle {
                inner: Inner::Model { sched, id, slot },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
    }
}

/// Shim of `std::thread::yield_now`: a *voluntary* scheduling point —
/// the yielding thread is deprioritized until no other thread is
/// plainly runnable, so spin-yield loops cannot starve their peers.
pub fn yield_now() {
    match sched::current() {
        Some(_) => sched::switch_point(SwitchKind::Yield),
        None => std::thread::yield_now(),
    }
}

//! The cooperative scheduler at the heart of both model modes.
//!
//! Every shimmed operation (atomic access, mutex acquire/release,
//! spawn, yield) funnels through [`switch_point`], which hands a
//! single execution token between real OS threads. Exactly one model
//! thread runs at a time, so an execution is fully determined by the
//! sequence of scheduling decisions — which is what lets the DFS
//! strategy replay and branch, and the DST strategy reproduce a run
//! from a seed.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::strategy::Strategy;

/// Panic payload used to tear down sibling model threads once one of
/// them has failed (or the execution hit a deadlock or budget). The
/// panic hook suppresses it and per-thread harnesses swallow it; only
/// the first *real* failure is reported.
pub(crate) struct ModelAbort;

/// Why a model thread is not currently runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Resource {
    /// Waiting for a shimmed mutex, keyed by its address.
    Lock(usize),
    /// Waiting for another model thread to finish.
    Join(usize),
}

/// Scheduling state of one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Eligible to run.
    Runnable,
    /// Voluntarily yielded (spin/backoff): only scheduled when no
    /// thread is plainly runnable, so spin loops cannot starve the
    /// threads they wait on.
    Yielded,
    /// Parked on a resource; re-enabled by [`Sched::release`] or by
    /// the target thread finishing.
    Blocked(Resource),
    /// Ran to completion (or unwound).
    Finished,
}

/// How the switching thread offers the token back to the scheduler.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum SwitchKind {
    /// An ordinary shared-memory access: staying on this thread costs
    /// nothing, switching away is a preemption.
    Progress,
    /// A voluntary yield (spin loop, backoff): switching away is free.
    Yield,
}

/// Mutable scheduler state, guarded by one mutex.
pub(crate) struct State {
    threads: Vec<Status>,
    /// Token holder; `usize::MAX` when no thread may run.
    current: usize,
    preemptions: u32,
    steps: u64,
    /// First failure of this execution: panic message, deadlock or
    /// budget overrun. Set at most once; later failures are echoes.
    abort: Option<String>,
    /// Set by the driver once every thread has finished, releasing
    /// parked finished threads to actually exit (their thread-local
    /// destructors may touch shimmed state, which must not interleave
    /// with a still-running execution).
    execution_over: bool,
    strategy: Strategy,
    /// Chosen thread ids, for failure reports (bounded).
    trace: Vec<u16>,
}

const NO_THREAD: usize = usize::MAX;
const TRACE_CAP: usize = 4096;

/// Per-`model()` scheduler shared by all model threads.
pub(crate) struct Sched {
    state: Mutex<State>,
    cv: Condvar,
    max_preemptions: u32,
    max_steps: u64,
    /// OS handles of every thread spawned this execution; joined by
    /// the driver before the next execution starts.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// (scheduler, my thread id) for threads running inside a model;
    /// `None` means shim operations pass straight through to std.
    static CTX: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler the calling OS thread is registered with, if any.
pub(crate) fn current() -> Option<(Arc<Sched>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// One scheduling decision before/after a shared-memory access. A
/// no-op outside a model or while unwinding (so guard drops during a
/// teardown never deadlock or double-panic).
pub(crate) fn switch_point(kind: SwitchKind) {
    if std::thread::panicking() {
        return;
    }
    if let Some((sched, id)) = current() {
        sched.switch(id, kind);
    }
}

/// Park the calling model thread on `res` until released, yielding
/// the token meanwhile. Returns `false` when no scheduler is active
/// (caller must fall back to real blocking).
pub(crate) fn block_on(res: Resource) -> bool {
    if std::thread::panicking() {
        return false;
    }
    match current() {
        Some((sched, id)) => {
            sched.block(id, res);
            true
        }
        None => false,
    }
}

/// Wake every model thread parked on `res`. Safe during unwinding.
pub(crate) fn release(res: Resource) {
    if let Some((sched, _)) = current() {
        sched.release(res);
    }
}

fn lock_state(sched: &Sched) -> MutexGuard<'_, State> {
    sched
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Sched {
    pub(crate) fn new(max_preemptions: u32, max_steps: u64, strategy: Strategy) -> Self {
        Sched {
            state: Mutex::new(State {
                threads: Vec::new(),
                current: NO_THREAD,
                preemptions: 0,
                steps: 0,
                abort: None,
                execution_over: false,
                strategy,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
            max_preemptions,
            max_steps,
            os_handles: Mutex::new(Vec::new()),
        }
    }

    /// Clear per-execution state; the strategy persists (it carries
    /// the DFS backtracking stack across executions).
    fn reset_execution(&self) {
        let mut st = lock_state(self);
        st.threads.clear();
        st.current = NO_THREAD;
        st.preemptions = 0;
        st.steps = 0;
        st.abort = None;
        st.execution_over = false;
        st.trace.clear();
    }

    /// Register a new model thread; the first registered thread (the
    /// execution root) starts holding the token.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock_state(self);
        let id = st.threads.len();
        st.threads.push(Status::Runnable);
        if id == 0 {
            st.current = 0;
        }
        id
    }

    fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(h);
    }

    /// The scheduling point: offer the token, let the strategy pick
    /// the next thread, wait until picked again.
    fn switch(self: &Arc<Self>, id: usize, kind: SwitchKind) {
        let mut st = lock_state(self);
        self.check_abort_and_budget(&mut st);
        st.threads[id] = match kind {
            SwitchKind::Progress => Status::Runnable,
            SwitchKind::Yield => Status::Yielded,
        };
        self.choose_next(&mut st, id);
        self.wait_turn(st, id);
    }

    fn block(self: &Arc<Self>, id: usize, res: Resource) {
        let mut st = lock_state(self);
        self.check_abort_and_budget(&mut st);
        st.threads[id] = Status::Blocked(res);
        self.choose_next(&mut st, id);
        self.wait_turn(st, id);
    }

    fn release(&self, res: Resource) {
        let mut st = lock_state(self);
        for t in st.threads.iter_mut() {
            if *t == Status::Blocked(res) {
                *t = Status::Runnable;
            }
        }
    }

    /// Block until `target` has finished running.
    pub(crate) fn join_thread(self: &Arc<Self>, id: usize, target: usize) {
        loop {
            let mut st = lock_state(self);
            self.check_abort_and_budget(&mut st);
            if st.threads[target] == Status::Finished {
                return;
            }
            st.threads[id] = Status::Blocked(Resource::Join(target));
            self.choose_next(&mut st, id);
            self.wait_turn(st, id);
        }
    }

    /// Mark the calling thread finished, wake joiners, pass the token
    /// on, then park until the whole execution is over (thread-local
    /// destructors must not interleave with live model threads).
    fn finish_thread(self: &Arc<Self>, id: usize) {
        let mut st = lock_state(self);
        st.threads[id] = Status::Finished;
        for t in st.threads.iter_mut() {
            if *t == Status::Blocked(Resource::Join(id)) {
                *t = Status::Runnable;
            }
        }
        self.choose_next(&mut st, id);
        while !st.execution_over {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Record the first real failure and wake everyone to tear down.
    fn record_failure(&self, id: usize, msg: String) {
        let mut st = lock_state(self);
        if st.abort.is_none() {
            let tail: Vec<u16> = st.trace.iter().rev().take(64).rev().copied().collect();
            st.abort = Some(format!(
                "thread {id} panicked: {msg}\nschedule tail (thread ids): {tail:?}"
            ));
        }
        self.cv.notify_all();
    }

    fn check_abort_and_budget(&self, st: &mut MutexGuard<'_, State>) {
        if st.abort.is_some() {
            std::panic::panic_any(ModelAbort);
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.abort = Some(format!(
                "execution exceeded the step budget ({}): livelock, or raise LOOM_MAX_STEPS",
                self.max_steps
            ));
            self.cv.notify_all();
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Pick the next token holder among enabled threads, honoring the
    /// preemption bound, and record the decision.
    fn choose_next(&self, st: &mut MutexGuard<'_, State>, from: usize) {
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&i| st.threads[i] == Status::Runnable)
            .collect();
        let mut cands = if runnable.is_empty() {
            (0..st.threads.len())
                .filter(|&i| st.threads[i] == Status::Yielded)
                .collect()
        } else {
            runnable
        };
        if cands.is_empty() {
            let unfinished: Vec<usize> = (0..st.threads.len())
                .filter(|&i| st.threads[i] != Status::Finished)
                .collect();
            st.current = NO_THREAD;
            if !unfinished.is_empty() && st.abort.is_none() {
                let held: Vec<(usize, Status)> =
                    unfinished.iter().map(|&i| (i, st.threads[i])).collect();
                st.abort = Some(format!("deadlock: no runnable thread, waiting: {held:?}"));
            }
            self.cv.notify_all();
            return;
        }
        // A switch away from a thread that could have kept running is
        // a preemption; once the bound is hit, pin the token to it.
        let from_was_runnable = from < st.threads.len() && st.threads[from] == Status::Runnable;
        if st.preemptions >= self.max_preemptions && from_was_runnable && cands.contains(&from) {
            cands = vec![from];
        }
        let idx = st.strategy.choose(&cands);
        let next = cands[idx];
        if next != from && from_was_runnable {
            st.preemptions += 1;
        }
        st.current = next;
        if st.trace.len() < TRACE_CAP {
            st.trace.push(next as u16);
        }
        if next != from {
            self.cv.notify_all();
        }
    }

    /// Wait until this thread holds the token again (or the execution
    /// aborted, in which case unwind via `ModelAbort`).
    fn wait_turn(self: &Arc<Self>, mut st: MutexGuard<'_, State>, id: usize) {
        while st.current != id {
            if st.abort.is_some() {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.threads[id] = Status::Runnable;
    }

    /// First-time scheduling of a freshly spawned thread. Returns
    /// `false` when the execution aborted before it ever ran.
    fn wait_first_turn(self: &Arc<Self>, id: usize) -> bool {
        let mut st = lock_state(self);
        while st.current != id {
            if st.abort.is_some() {
                return false;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.threads[id] = Status::Runnable;
        true
    }

    /// Driver side: wait for every model thread to finish, release
    /// the finished threads to exit, join their OS handles, and
    /// return the failure (if any) plus executed-step count.
    fn drain_execution(self: &Arc<Self>) -> Option<String> {
        let mut st = lock_state(self);
        while st.threads.iter().any(|t| *t != Status::Finished) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.execution_over = true;
        let abort = st.abort.take();
        self.cv.notify_all();
        drop(st);
        let handles: Vec<_> = std::mem::take(
            &mut *self
                .os_handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        abort
    }

    /// Ask the strategy whether an unexplored execution remains.
    pub(crate) fn advance_strategy(&self) -> bool {
        let mut st = lock_state(self);
        st.strategy.next_execution()
    }

    pub(crate) fn with_strategy<R>(&self, f: impl FnOnce(&Strategy) -> R) -> R {
        let st = lock_state(self);
        f(&st.strategy)
    }
}

/// Run one closure as a model thread: register the context, wait to
/// be scheduled, run, record real panics, park until execution end.
pub(crate) fn run_model_thread(sched: Arc<Sched>, id: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), id)));
    if sched.wait_first_turn(id) {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(body));
        if let Err(payload) = outcome {
            if !payload.is::<ModelAbort>() {
                sched.record_failure(id, panic_message(payload.as_ref()));
            }
        }
    }
    // Clear the context *before* finishing so thread-local destructors
    // running after this frame see no scheduler and pass through.
    CTX.with(|c| *c.borrow_mut() = None);
    sched.finish_thread(id);
}

/// Spawn a model thread running `body`; used by the driver (root) and
/// the `thread::spawn` shim alike.
pub(crate) fn spawn_model_thread(
    sched: &Arc<Sched>,
    body: impl FnOnce() + Send + 'static,
) -> usize {
    let id = sched.register_thread();
    let sched2 = Arc::clone(sched);
    let handle = std::thread::Builder::new()
        .name(format!("loom-model-{id}"))
        .spawn(move || run_model_thread(sched2, id, body))
        .expect("spawning a model thread");
    sched.push_os_handle(handle);
    id
}

/// Drive one full execution of `root` under `sched`: spawn it as
/// thread 0, wait for quiescence, reap OS threads, return the failure.
pub(crate) fn run_execution(
    sched: &Arc<Sched>,
    root: impl FnOnce() + Send + 'static,
) -> Option<String> {
    sched.reset_execution();
    spawn_model_thread(sched, root);
    sched.drain_execution()
}

/// Extract a readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Install (once, process-wide) a panic hook that silences the
/// `ModelAbort` teardown payload and defers to the previous hook for
/// everything else. Model executions tear sibling threads down by
/// panicking them; without this the default hook would spray
/// backtraces for panics that are part of normal operation.
pub(crate) fn install_hook_once() {
    static HOOKED: std::sync::Once = std::sync::Once::new();
    HOOKED.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

//! Shimmed `std::sync` replacements: drop-in atomics and mutexes
//! whose every operation is a scheduling decision.
//!
//! Memory model: the scheduler serializes all shimmed operations, so
//! the model checks **sequential consistency** — every `Ordering`
//! argument is accepted for API compatibility and strengthened to
//! `SeqCst` underneath. Weak-memory-only bugs (a `Relaxed` load that
//! needs an `Acquire`) are out of this checker's scope; what it does
//! exhaust are the *interleaving* bugs — lost updates, torn
//! publication, protocol races — which is where the STM's risk lives
//! (see DESIGN.md §15).
//!
//! Outside an active model (no scheduler registered on the calling
//! thread) every type degrades to a plain passthrough over `std`, so
//! `cfg(loom)` binaries can still run ordinary code paths.

use crate::sched::{self, Resource, SwitchKind};

/// Shimmed `std::sync::atomic`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::super::sched::{self, SwitchKind};

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Model-checked atomic: each operation is a scheduling
            /// point, executed with `SeqCst` semantics regardless of
            /// the ordering argument (see the module docs).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Shim of the std constructor (usable in statics).
                #[must_use]
                pub const fn new(v: $int) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Shimmed load; a scheduling point.
                pub fn load(&self, _order: Ordering) -> $int {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner.load(Ordering::SeqCst)
                }

                /// Shimmed store; a scheduling point.
                pub fn store(&self, v: $int, _order: Ordering) {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner.store(v, Ordering::SeqCst);
                }

                /// Shimmed read-modify-write add; a scheduling point.
                pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Shimmed read-modify-write subtract; a scheduling point.
                pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Shimmed read-modify-write max; a scheduling point.
                pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner.fetch_max(v, Ordering::SeqCst)
                }

                /// Shimmed read-modify-write AND; a scheduling point.
                pub fn fetch_and(&self, v: $int, _order: Ordering) -> $int {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner.fetch_and(v, Ordering::SeqCst)
                }

                /// Shimmed read-modify-write OR; a scheduling point.
                pub fn fetch_or(&self, v: $int, _order: Ordering) -> $int {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner.fetch_or(v, Ordering::SeqCst)
                }

                /// Shimmed compare-exchange; a scheduling point.
                ///
                /// # Errors
                ///
                /// Returns the observed value when it differs from
                /// `current`, exactly like the std API.
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    sched::switch_point(SwitchKind::Progress);
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Shimmed weak compare-exchange. Never fails
                /// spuriously (the model is SC), which only shrinks
                /// the interleaving space a retry loop generates.
                ///
                /// # Errors
                ///
                /// Returns the observed value when it differs from
                /// `current`.
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

    /// Model-checked atomic boolean (same contract as the integer
    /// shims; the subset of the std API the workspace uses).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Shim of the std constructor (usable in statics).
        #[must_use]
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Shimmed load; a scheduling point.
        pub fn load(&self, _order: Ordering) -> bool {
            sched::switch_point(SwitchKind::Progress);
            self.inner.load(Ordering::SeqCst)
        }

        /// Shimmed store; a scheduling point.
        pub fn store(&self, v: bool, _order: Ordering) {
            sched::switch_point(SwitchKind::Progress);
            self.inner.store(v, Ordering::SeqCst);
        }

        /// Shimmed swap; a scheduling point.
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            sched::switch_point(SwitchKind::Progress);
            self.inner.swap(v, Ordering::SeqCst)
        }
    }
}

/// Model-checked mutex: acquiring, failing to acquire and releasing
/// are all scheduling points; contention parks the thread on the
/// scheduler (never on the OS), so lock-hold stalls and lock-order
/// deadlocks are visible to the search.
///
/// Poisoning mirrors `std`: a panic while holding the guard poisons
/// the inner mutex, and `lock` surfaces it through the usual
/// `Result`, so `lock().unwrap_or_else(PoisonError::into_inner)`
/// call sites compile and behave identically under the shim.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the lock and wakes scheduler-parked
/// waiters on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    addr: usize,
}

impl<T> Mutex<T> {
    /// Shim of the std constructor (usable in statics).
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, parking on the scheduler under contention.
    ///
    /// # Errors
    ///
    /// Returns a [`std::sync::PoisonError`] wrapping the guard when a
    /// previous holder panicked, exactly like `std::sync::Mutex`.
    #[allow(clippy::missing_panics_doc)] // poison is mapped, not unwrapped
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::sync::PoisonError<MutexGuard<'_, T>>> {
        let addr = std::ptr::from_ref(self).cast::<()>() as usize;
        loop {
            sched::switch_point(SwitchKind::Progress);
            match self.inner.try_lock() {
                Ok(g) => {
                    return Ok(MutexGuard {
                        inner: Some(g),
                        addr,
                    })
                }
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    return Err(std::sync::PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        addr,
                    }))
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    if !sched::block_on(Resource::Lock(addr)) {
                        // No scheduler (passthrough or teardown):
                        // block for real.
                        return match self.inner.lock() {
                            Ok(g) => Ok(MutexGuard {
                                inner: Some(g),
                                addr,
                            }),
                            Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                                inner: Some(p.into_inner()),
                                addr,
                            })),
                        };
                    }
                }
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then wake scheduler-parked
        // waiters, then offer a scheduling point (skipped while
        // unwinding — `switch_point` checks).
        drop(self.inner.take());
        sched::release(Resource::Lock(self.addr));
        sched::switch_point(SwitchKind::Progress);
    }
}

//! Shimmed `std::hint`.

use crate::sched::{self, SwitchKind};

/// Shim of `std::hint::spin_loop`: treated as a voluntary yield, so a
/// spin-wait demotes itself instead of burning the whole preemption
/// budget re-reading an unchanged location.
pub fn spin_loop() {
    match sched::current() {
        Some(_) => sched::switch_point(SwitchKind::Yield),
        None => std::hint::spin_loop(),
    }
}

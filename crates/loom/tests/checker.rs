//! Self-tests of the model checker: it must explore real
//! interleavings (find a seeded race), respect mutual exclusion,
//! detect deadlocks, and replay DST runs byte-identically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sitm_loom::sync::atomic::{AtomicU64, Ordering};
use sitm_loom::sync::Mutex;
use sitm_loom::{dst, model, model_with, thread, FaultPlan, ModelOpts};

fn opts() -> ModelOpts {
    ModelOpts {
        max_preemptions: 2,
        max_iterations: 200_000,
        max_steps: 100_000,
    }
}

/// The classic lost update: two threads doing load-then-store
/// increments. The checker MUST find the interleaving where both load
/// before either stores — if it cannot find this, it cannot find
/// anything.
#[test]
fn finds_the_lost_update_race() {
    let failed = catch_unwind(AssertUnwindSafe(|| {
        model_with(opts(), || {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    let msg = match failed {
        Err(p) => sitm_loom_panic_msg(&p),
        Ok(()) => panic!("the checker missed the textbook load/store race"),
    };
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

/// The same program with an atomic RMW has no failing interleaving.
#[test]
fn fetch_add_has_no_failing_interleaving() {
    let explored = model_with(opts(), || {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(
        explored > 1,
        "expected multiple interleavings, got {explored}"
    );
}

/// Mutex-protected read-modify-write must pass exhaustively, proving
/// the shim actually provides mutual exclusion under the scheduler.
#[test]
fn mutex_preserves_mutual_exclusion() {
    model(|| {
        let c = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let mut g = c.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    *g += 1;
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(
            *c.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
            2
        );
    });
}

/// AB-BA lock ordering: the checker must find the deadlock.
#[test]
fn detects_lock_order_deadlock() {
    let failed = catch_unwind(AssertUnwindSafe(|| {
        model_with(opts(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h1 = thread::spawn(move || {
                let _ga = a2.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let _gb = b2.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let h2 = thread::spawn(move || {
                let _gb = b3.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let _ga = a3.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            });
            h1.join();
            h2.join();
        });
    }));
    let msg = match failed {
        Err(p) => sitm_loom_panic_msg(&p),
        Ok(()) => panic!("the checker missed an AB-BA deadlock"),
    };
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// Yielding threads are demoted, so a spin-wait handshake terminates
/// instead of livelocking the search.
#[test]
fn yield_demotion_lets_spin_waits_progress() {
    model(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let setter = thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
        });
        let f3 = Arc::clone(&flag);
        let waiter = thread::spawn(move || {
            while f3.load(Ordering::SeqCst) == 0 {
                thread::yield_now();
            }
        });
        setter.join();
        waiter.join();
    });
}

/// Same seed, same schedule: the DST replay contract, plus evidence
/// that the fault plan actually injects stalls on some seed.
#[test]
fn dst_replays_are_identical_and_faults_fire() {
    let run = |seed: u64| {
        dst::run_seeded(seed, FaultPlan::default(), || {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        for _ in 0..8 {
                            c.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            c.load(Ordering::SeqCst)
        })
    };
    let mut any_stall = false;
    for seed in 0..6u64 {
        let (v1, r1) = run(seed);
        let (v2, r2) = run(seed);
        assert_eq!(v1, 24);
        assert_eq!((v1, r1), (v2, r2), "seed {seed:#x} diverged");
        any_stall |= r1.stalls_injected > 0;
    }
    assert!(any_stall, "no seed injected a single stall");
}

/// A failing DST run reports the seed that replays it.
#[test]
fn dst_failure_message_carries_the_seed() {
    let failed = catch_unwind(AssertUnwindSafe(|| {
        dst::run_seeded(0x2a, FaultPlan::none(), || {
            panic!("intentional dst failure");
        })
    }));
    let msg = match failed {
        Err(p) => sitm_loom_panic_msg(&p),
        Ok(_) => panic!("run must fail"),
    };
    assert!(msg.contains("0x2a"), "seed missing from: {msg}");
    assert!(
        msg.contains("intentional dst failure"),
        "cause missing: {msg}"
    );
}

fn sitm_loom_panic_msg(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string payload>")
    }
}
